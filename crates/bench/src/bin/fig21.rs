//! Fig. 21 — processing time of the three L4Span events (downlink
//! packet, uplink ACK, RAN feedback) measured wall-clock inside a busy
//! multi-UE cell. Criterion micro-benchmarks of the same paths live in
//! `benches/event_processing.rs`.
//!
//! `cargo run --release -p l4span-bench --bin fig21`

use l4span_bench::{banner, print_cdf, Args};
use l4span_cc::WanLink;
use l4span_harness::scenario::{congested_cell, l4span_default, ChannelMix};
use l4span_harness::{run, ScenarioConfig};
use l4span_sim::Duration;

fn main() {
    let args = Args::parse();
    let secs = args.secs_or(10);
    banner("Fig. 21", "L4Span event processing time", &args);

    let mut cfg: ScenarioConfig = congested_cell(
        if args.full { 64 } else { 8 },
        "prague",
        ChannelMix::Static,
        16_384,
        WanLink::east(),
        l4span_default(),
        args.seed,
        Duration::from_secs(secs),
    );
    cfg.measure_marker_time = true;
    let r = run(cfg);
    let (dl, ul, fb) = &r.marker_time_ns;
    for (name, v) in [("DL packet", dl), ("UL packet", ul), ("RAN feedback", fb)] {
        let ns: Vec<f64> = v.iter().map(|&x| x as f64 / 1000.0).collect();
        println!(
            "\n{name}: {} events, median {:.3} us, p97 {:.3} us",
            ns.len(),
            l4span_sim::stats::percentile(&ns, 50.0),
            l4span_sim::stats::percentile(&ns, 97.0)
        );
        print_cdf(&format!("{name} processing time (us)"), &ns, 11);
    }
    println!("\nPaper shape: sub-microsecond medians; 97% of DL packets under");
    println!("2 us. (Absolute values depend on the host CPU.)");
}

//! Fig. 19 — impact of the sojourn-time threshold τ_s on Prague RTT and
//! cell rate-sum, swept over {1,2,5,10,20,50,100} ms for several cell
//! loads; plus the §6.3.1 DualPi2-at-CU ablation (1 ms and 10 ms step
//! thresholds), which under-utilises the fading channel.
//!
//! `cargo run --release -p l4span-bench --bin fig19`

use l4span_bench::{banner, run_grid, Args};
use l4span_cc::WanLink;
use l4span_core::L4SpanConfig;
use l4span_harness::scenario::{congested_cell, ChannelMix};
use l4span_harness::MarkerKind;
use l4span_sim::Duration;

fn main() {
    let args = Args::parse();
    let secs = args.secs_or(12);
    banner("Fig. 19", "τ_s sweep and the DualPi2-in-RAN ablation", &args);

    let ue_counts: Vec<usize> = if args.full {
        vec![1, 4, 8, 16, 32, 64]
    } else {
        vec![1, 4, 16]
    };
    println!(
        "\n{:<10} {:<6} {:>12} {:>14}",
        "tau_s(ms)", "UEs", "RTT mean(ms)", "rate sum Mb/s"
    );
    let mut cells = Vec::new();
    for &n in &ue_counts {
        for tau_ms in [1u64, 2, 5, 10, 20, 50, 100] {
            let l4 = L4SpanConfig {
                tau_s: Duration::from_millis(tau_ms),
                ..L4SpanConfig::default()
            };
            cells.push((
                (tau_ms, n),
                congested_cell(
                    n,
                    "prague",
                    ChannelMix::Mobile,
                    16_384,
                    WanLink::east(),
                    MarkerKind::L4Span(l4),
                    args.seed,
                    Duration::from_secs(secs),
                ),
            ));
        }
    }
    for ((tau_ms, n), r) in run_grid(cells) {
        let flows: Vec<usize> = (0..n).collect();
        let mut rtts = Vec::new();
        for &f in &flows {
            rtts.extend_from_slice(&r.rtt_ms[f]);
        }
        let rtt_mean = l4span_sim::stats::mean(&rtts);
        let sum: f64 = flows.iter().map(|&f| r.goodput_total_mbps(f)).sum();
        println!("{tau_ms:<10} {n:<6} {rtt_mean:>12.1} {sum:>14.2}");
    }

    println!("\n--- §6.3.1 ablation: DualPi2 transplanted to the CU (1 UE, mobile) ---");
    println!(
        "{:<22} {:>12} {:>14}",
        "marker", "RTT mean(ms)", "rate Mb/s"
    );
    let ablation = [
        (
            "dualpi2@cu 1ms",
            MarkerKind::DualPi2Cu {
                threshold: Duration::from_millis(1),
            },
        ),
        (
            "dualpi2@cu 10ms",
            MarkerKind::DualPi2Cu {
                threshold: Duration::from_millis(10),
            },
        ),
        ("l4span 10ms", MarkerKind::L4Span(L4SpanConfig::default())),
    ]
    .into_iter()
    .map(|(name, marker)| {
        (
            name,
            congested_cell(
                1,
                "prague",
                ChannelMix::Mobile,
                16_384,
                WanLink::east(),
                marker,
                args.seed,
                Duration::from_secs(secs),
            ),
        )
    })
    .collect();
    for (name, r) in run_grid(ablation) {
        let rtt_mean = l4span_sim::stats::mean(&r.rtt_ms[0]);
        println!(
            "{name:<22} {rtt_mean:>12.1} {:>14.2}",
            r.goodput_total_mbps(0)
        );
    }
    println!("\nPaper shape: throughput reaches its plateau at τ_s = 10 ms with");
    println!("still-low RTT (the knee); DualPi2's fixed step loses 73%/28% of");
    println!("throughput at 1/10 ms because it can't track the fading egress.");
}

//! Fig. 15 — effectiveness of feedback short-circuiting: one UE, local
//! server, Prague or CUBIC, with the uplink-ACK rewrite enabled vs
//! disabled (downlink marking). Prints RTT and throughput CDFs.
//!
//! `cargo run --release -p l4span-bench --bin fig15`

use l4span_bench::{banner, print_cdf, run_grid, Args};
use l4span_cc::WanLink;
use l4span_core::L4SpanConfig;
use l4span_harness::scenario::congested_cell;
use l4span_harness::scenario::ChannelMix;
use l4span_harness::MarkerKind;
use l4span_sim::Duration;

fn main() {
    let args = Args::parse();
    let secs = args.secs_or(20);
    banner("Fig. 15", "feedback short-circuiting on/off", &args);

    let mut cells = Vec::new();
    for cc in ["prague", "cubic"] {
        for (label, sc) in [("with SC", true), ("w/o SC", false)] {
            let l4cfg = L4SpanConfig {
                short_circuit: sc,
                ..L4SpanConfig::default()
            };
            cells.push((
                (cc, label),
                congested_cell(
                    1,
                    cc,
                    ChannelMix::Mobile,
                    16_384,
                    WanLink::local(),
                    MarkerKind::L4Span(l4cfg),
                    args.seed,
                    Duration::from_secs(secs),
                ),
            ));
        }
    }
    {
        for ((cc, label), r) in run_grid(cells) {
            println!(
                "\n{cc} {label}: mean thr {:.2} Mbit/s, rtt p50/p99.9 = {:.1}/{:.1} ms",
                r.goodput_total_mbps(0),
                l4span_sim::stats::percentile(&r.rtt_ms[0], 50.0),
                l4span_sim::stats::percentile(&r.rtt_ms[0], 99.9),
            );
            print_cdf(&format!("{cc} {label} RTT (ms)"), &r.rtt_ms[0], 11);
            let thr: Vec<f64> = r
                .throughput_series_mbps(0, 1)
                .iter()
                .map(|&(_, m)| m)
                .collect();
            print_cdf(&format!("{cc} {label} throughput (Mbit/s)"), &thr, 11);
        }
    }
    println!("\nPaper shape: short-circuiting lowers mean RTT (28.5 vs 33.9 ms");
    println!("Prague; 75 vs 85 ms CUBIC) and slashes the 99.9th tail, with no");
    println!("throughput penalty.");
}

//! `fig_handover` — the mobility experiment this repo adds beyond the
//! paper's figures: a 2-cell topology with genuine Xn handover (PDCP
//! re-establishment, lossless RLC forwarding), swept over handover
//! frequency × marker handover policy × congestion controller.
//!
//! For every grid cell it reports goodput, steady-state OWD, the OWD in
//! the 500 ms after each handover (where the `MigrateState` vs
//! `ColdStart` policy choice shows up — a migrated estimate keeps the
//! old cell's attainable-rate peak for up to ~1.25 s and under-marks
//! against a worse target cell), the mean handover interruption time
//! (gap in delivered bytes around the switch), and each cell's share of
//! the served traffic.
//!
//! `cargo run --release -p l4span-bench --bin fig_handover [--full]`

use l4span_bench::{banner, run_grid, Args};
use l4span_core::HandoverPolicy;
use l4span_harness::scenario::{handover_cell, l4span_default};
use l4span_harness::Report;
use l4span_sim::Duration;

const POST_HO_WINDOW: Duration = Duration::from_millis(500);

fn policy_name(p: HandoverPolicy) -> &'static str {
    match p {
        HandoverPolicy::MigrateState => "migrate",
        HandoverPolicy::ColdStart => "cold",
    }
}

fn row(label: &str, n_ues: usize, r: &Report) {
    let flows: Vec<usize> = (0..n_ues).collect();
    let thr: f64 = flows.iter().map(|&f| r.goodput_total_mbps(f)).sum();
    let owd = r.owd_stats_pooled(&flows);
    let post = r.post_handover_owd(&flows, POST_HO_WINDOW);
    let gap = r
        .mean_interruption_ms()
        .map(|g| format!("{g:8.1}"))
        .unwrap_or_else(|| "       -".into());
    println!(
        "{label:<28} {:>4} {thr:>9.2} {:>9.1} {:>9.1} {:>11.1} {gap} {:>8.2} {:>8.2}",
        r.handovers.len(),
        owd.median,
        post.median,
        post.p90,
        r.cell_goodput_mbps(0),
        r.cell_goodput_mbps(1),
    );
}

fn main() {
    let args = Args::parse();
    let secs = args.secs_or(8);
    banner(
        "fig_handover",
        "2-cell mobility: HO frequency × marker policy × CC",
        &args,
    );
    let n_ues = 4;
    let periods_ms: &[u64] = if args.full {
        &[500, 1000, 2000, 4000]
    } else {
        &[1000, 2000]
    };
    let ccs: &[&str] = if args.full {
        &["cubic", "prague", "bbr2", "reno", "bbr"]
    } else {
        &["cubic", "prague", "bbr2"]
    };
    let policies = [HandoverPolicy::MigrateState, HandoverPolicy::ColdStart];

    let mut grid = Vec::new();
    for &cc in ccs {
        for &period in periods_ms {
            for policy in policies {
                let label = format!("{cc}/ho{period}ms/{}", policy_name(policy));
                let cfg = handover_cell(
                    n_ues,
                    cc,
                    Duration::from_millis(period),
                    policy,
                    l4span_default(),
                    args.seed,
                    Duration::from_secs(secs),
                );
                grid.push((label, cfg));
            }
        }
    }
    let results = run_grid(grid);

    println!(
        "\n{:<28} {:>4} {:>9} {:>9} {:>9} {:>11} {:>8} {:>8} {:>8}",
        "scenario", "HOs", "thr Mbps", "owd p50", "postHO50", "postHO p90", "gap ms", "cell0", "cell1"
    );
    for (label, r) in &results {
        row(label, n_ues, r);
    }

    // The A/B the issue calls for: same CC and cadence, the two marker
    // policies side by side on post-handover delay.
    println!("\npolicy deltas (postHO p50, migrate − cold):");
    for &cc in ccs {
        for &period in periods_ms {
            let find = |pol: HandoverPolicy| {
                let key = format!("{cc}/ho{period}ms/{}", policy_name(pol));
                results
                    .iter()
                    .find(|(l, _)| *l == key)
                    .map(|(_, r)| {
                        r.post_handover_owd(&(0..n_ues).collect::<Vec<_>>(), POST_HO_WINDOW)
                            .median
                    })
                    .unwrap_or(f64::NAN)
            };
            let m = find(HandoverPolicy::MigrateState);
            let c = find(HandoverPolicy::ColdStart);
            println!("  {cc:<8} ho{period:<6} {m:8.1} - {c:8.1} = {:+8.1} ms", m - c);
        }
    }
    println!("\nReading: `migrate` rides the old cell's rate estimate into the");
    println!("new cell (paper §7), `cold` re-learns from scratch; the delta");
    println!("shows which way that gamble goes at each handover cadence.");
}

//! Fig. 12 — L4Span vs the TC-RAN baseline (CoDel / ECN-CoDel installed
//! at the CU): Prague and CUBIC, static/mobile channels, east/west
//! servers; reports one-way delay and throughput.
//!
//! `cargo run --release -p l4span-bench --bin fig12`

use l4span_bench::{banner, run_grid, Args};
use l4span_cc::WanLink;
use l4span_harness::scenario::{congested_cell, l4span_default, ChannelMix};
use l4span_harness::MarkerKind;
use l4span_sim::{Duration, Instant};

fn main() {
    let args = Args::parse();
    let secs = args.secs_or(30);
    banner("Fig. 12", "L4Span vs TC-RAN (CoDel at the CU)", &args);

    println!(
        "\n{:<8} {:<8} {:<4} {:<6} {:>14} {:>14}",
        "cc", "marker", "chan", "server", "OWD med (ms)", "thr (Mbit/s)"
    );
    let servers: Vec<(&str, WanLink)> = if args.full {
        vec![("east", WanLink::east()), ("west", WanLink::west())]
    } else {
        vec![("east", WanLink::east())]
    };
    let mut cells = Vec::new();
    for cc in ["prague", "cubic"] {
        // TC-RAN runs ECN-CoDel for the L4S flow and CoDel for classic,
        // as the paper's §6.2.2 configuration does.
        let tcran = MarkerKind::TcRan { ecn: true };
        for (mname, marker) in [("l4span", l4span_default()), ("tc-ran", tcran)] {
            for (chan, mix) in [("S", ChannelMix::Static), ("M", ChannelMix::Mobile)] {
                for (sname, wan) in &servers {
                    cells.push((
                        (cc, mname, chan, *sname),
                        congested_cell(
                            1,
                            cc,
                            mix,
                            16_384,
                            *wan,
                            marker.clone(),
                            args.seed,
                            Duration::from_secs(secs),
                        ),
                    ));
                }
            }
        }
    }
    for ((cc, mname, chan, sname), r) in run_grid(cells) {
        let owd = r.owd_stats(0);
        // Steady state: skip the convergence transient.
        let thr = r.goodput_mbps(0, Instant::from_secs(5), Instant::from_secs(secs));
        println!(
            "{cc:<8} {mname:<8} {chan:<4} {sname:<6} {:>14.1} {:>14.2}",
            owd.median, thr
        );
    }
    println!("\nPaper shape: similar delay for Prague under both, but L4Span");
    println!("utilises the fading channel much better (+148% static Prague");
    println!("throughput in the paper); CUBIC under CoDel under-utilises.");
}

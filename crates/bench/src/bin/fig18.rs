//! Fig. 18 — channel stable-period CDF from (synthetic) DCI/MCS traces
//! of a 600 MHz FDD cell and a 2.5 GHz TDD cell, validating the
//! τ_c/2 = 12.45 ms estimation-window choice.
//!
//! `cargo run --release -p l4span-bench --bin fig18`

use l4span_bench::{banner, print_cdf, Args};
use l4span_harness::dci::{mcs_trace, stable_periods_ms, CellTraceSpec};
use l4span_sim::stats::Cdf;
use l4span_sim::Duration;

fn main() {
    let args = Args::parse();
    let secs = args.secs_or(60);
    banner("Fig. 18", "channel stable periods vs the estimation window", &args);

    for (name, spec) in [
        ("FDD 600 MHz", CellTraceSpec::fdd_600mhz()),
        ("TDD 2.5 GHz", CellTraceSpec::tdd_2_5ghz()),
    ] {
        let trace = mcs_trace(spec, Duration::from_secs(secs), args.seed);
        let periods = stable_periods_ms(&trace, spec.slot, 5, 1000.0);
        let cdf = Cdf::from_samples(&periods);
        println!(
            "\n{name}: {} periods; fraction shorter than the 12.45 ms window: {:.1}%",
            periods.len(),
            cdf.fraction_at(12.45) * 100.0
        );
        print_cdf(&format!("{name} stable period (ms)"), &periods, 11);
    }
    println!("\nPaper shape: >90% of stable periods exceed the estimation");
    println!("window on both cells; the FDD cell is markedly more stable.");
}

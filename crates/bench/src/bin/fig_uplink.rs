//! Bidirectional-call sweep: `video_call_bidir` (a 30 fps downlink leg
//! *and* a 30 fps uplink leg per UE) × {cubic, prague, bbr2} × marker
//! on/off. The TDD pattern leaves the uplink one slot in five, so the
//! uplink legs congest the **UE-side** RLC queues — the direction 5G-L4S
//! work calls the harder one for time-critical apps — and the UE-side
//! L4Span instance (SR/BSR-and-grant-driven delay prediction) is what
//! keeps them usable. Reports per-direction frame QoE and uplink OWD.
//!
//! `cargo run --release -p l4span-bench --bin fig_uplink`

use l4span_bench::{banner, fmt_box, run_grid, Args};
use l4span_harness::scenario::{l4span_default, video_call_bidir};
use l4span_harness::{MarkerKind, Report};
use l4span_sim::Duration;

/// Flow indices of one direction (flows alternate DL, UL per call).
fn legs(r: &Report, uplink: bool) -> Vec<usize> {
    (0..r.thr_bins.len())
        .filter(|f| (f % 2 == 1) == uplink)
        .collect()
}

fn miss_pct(r: &Report, flows: &[usize]) -> f64 {
    let generated: u64 = flows.iter().map(|&f| r.frames_generated[f]).sum();
    let missed: u64 = flows.iter().map(|&f| r.frames_missed[f]).sum();
    100.0 * missed as f64 / generated.max(1) as f64
}

fn main() {
    let args = Args::parse();
    let secs = args.secs_or(10);
    let calls = if args.full { 4 } else { 3 };
    banner(
        "Uplink",
        "bidirectional video calls: uplink-leg QoE ±UE-side L4Span",
        &args,
    );
    println!("\n{calls} calls × (DL 30fps + UL 30fps legs), {secs} s each");
    println!(
        "\n{:<7} {:<3} {:>10} {:>10} {:>10} {:>10} {:>44}",
        "cc", "+", "UL miss %", "DL miss %", "UL Mb/s", "DL Mb/s", "UL OWD ms: med [p25,p75] (p10,p90)"
    );

    let mut cells = Vec::new();
    for cc in ["cubic", "prague", "bbr2"] {
        for (mark, marker) in [(" ", MarkerKind::None), ("+", l4span_default())] {
            cells.push((
                (cc, mark),
                video_call_bidir(calls, cc, marker, args.seed, Duration::from_secs(secs)),
            ));
        }
    }
    for ((cc, mark), r) in run_grid(cells) {
        let ul = legs(&r, true);
        let dl = legs(&r, false);
        let ul_thr: f64 = ul.iter().map(|&f| r.goodput_total_mbps(f)).sum();
        let dl_thr: f64 = dl.iter().map(|&f| r.goodput_total_mbps(f)).sum();
        let owd = r.ul_owd_stats_pooled(&ul);
        println!(
            "{cc:<7} {mark:<3} {:>10.1} {:>10.1} {ul_thr:>10.2} {dl_thr:>10.2} {}",
            miss_pct(&r, &ul),
            miss_pct(&r, &dl),
            fmt_box(&owd),
        );
    }
    println!("\nExpected shape: without the marker the uplink legs bloat the");
    println!("UE-side RLC queue (seconds of OWD, ~100% frame misses) while the");
    println!("downlink legs stay healthy; with the UE-side L4Span instance the");
    println!("uplink legs drop to tens of ms and single-digit-to-low misses,");
    println!("sharpest for prague's scalable response.");
}

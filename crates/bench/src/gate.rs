//! Shared machinery behind the perf tooling (`perf_gate`,
//! `fig_breakdown`): the canonical scenario set, `BENCH_PR*.json`
//! parsing, baseline folding, and the regression-check math.
//!
//! Everything that decides pass/fail lives here as pure functions over
//! plain data so the unit tests can exercise the threshold math,
//! best-prior-baseline selection, and missing-scenario handling without
//! running a single simulation.

use l4span_cc::WanLink;
use l4span_core::HandoverPolicy;
use l4span_harness::scenario::{
    bonded_xr_8ue, congested_cell, handover_cell, impaired_path_cell, interactive_apps_mixed,
    l4span_default, metro_1000ue_50cell, video_call_bidir, ChannelMix,
};
use l4span_harness::{ImpairmentSpec, ScenarioConfig};
use l4span_sim::Duration;

/// Simulated seconds per canonical scenario (long enough to reach
/// steady state, short enough for CI).
pub const CANONICAL_SECS: u64 = 8;

/// Shards the perf tooling runs the metro world on. The metro's UEs
/// are uniform across cells, so round-robin assignment at 25 shards
/// gives every shard exactly two cells — zero imbalance, and the
/// shortest critical path (longest single-shard busy time) the
/// aggregate rate divides by.
pub const METRO_SHARDS: usize = 25;

/// Simulated seconds for the metro canonical scenario — shorter than
/// [`CANONICAL_SECS`] because the world is two orders of magnitude
/// bigger (1000 UEs / 50 cells); two seconds covers the flow-start
/// ramp, the first mobility wave, and plenty of steady state.
pub const METRO_SECS: u64 = 2;

/// One canonical perf scenario: the config plus how many per-cell
/// shards the perf tooling runs it on (1 = the classic whole-world
/// path; `perf_gate` keeps those rows byte-compatible with PR 6).
pub struct Canonical {
    /// Stable scenario name (keys `BENCH_PR*.json` rows and baselines).
    pub name: &'static str,
    /// The scenario.
    pub cfg: ScenarioConfig,
    /// Shard count for `run_sharded` (1 = classic `World::run`).
    pub shards: usize,
}

fn classic(name: &'static str, cfg: ScenarioConfig) -> Canonical {
    Canonical {
        name,
        cfg,
        shards: 1,
    }
}

/// The canonical perf-tracking scenario set, shared by `perf_gate`
/// (events/sec) and `fig_breakdown` (per-subsystem attribution) so the
/// two always measure the same workloads.
pub fn canonical_scenarios(secs: u64) -> Vec<Canonical> {
    let dur = Duration::from_secs(secs);
    vec![
        classic(
            "congested_cubic_16ue",
            congested_cell(
                16,
                "cubic",
                ChannelMix::Mobile,
                16_384,
                WanLink::east(),
                l4span_default(),
                7,
                dur,
            ),
        ),
        classic(
            "prague_l4span_16ue",
            congested_cell(
                16,
                "prague",
                ChannelMix::Mobile,
                16_384,
                WanLink::east(),
                l4span_default(),
                7,
                dur,
            ),
        ),
        classic(
            "bbr2_mobile_8ue",
            congested_cell(
                8,
                "bbr2",
                ChannelMix::Mobile,
                16_384,
                WanLink::east(),
                l4span_default(),
                7,
                dur,
            ),
        ),
        classic(
            "handover_2cell_cubic_4ue",
            handover_cell(
                4,
                "cubic",
                Duration::from_secs(1),
                HandoverPolicy::MigrateState,
                l4span_default(),
                7,
                dur,
            ),
        ),
        classic(
            "interactive_apps_mixed",
            interactive_apps_mixed(4, "prague", l4span_default(), 7, dur),
        ),
        classic(
            "video_call_bidir",
            video_call_bidir(3, "prague", l4span_default(), 7, dur),
        ),
        // New in PR 8: the sharded metro world. Its simulated duration
        // is fixed at METRO_SECS (not `secs`) so `perf_gate` and
        // `fig_breakdown --secs N` stay comparable on it.
        Canonical {
            name: "metro_1000ue_50cell",
            cfg: metro_1000ue_50cell("prague", 11, Duration::from_secs(METRO_SECS)),
            shards: METRO_SHARDS,
        },
        // New in PR 9: the impaired Internet path — a 25% ECT-bleaching
        // middlebox feeding a 30 Mbit RFC 3168 single-queue hop (below
        // the cell's capacity, so the hop is the bottleneck and its RED
        // law actually runs), with fallback-armed Prague senders. Tracks
        // the impairment pipeline and classic-queue hot paths: RED
        // marking, pipeline RNG, the fallback detector on every ACK.
        // Shards are *requested* so the row also exercises — and prints
        // — the planner's rejection: an impairment pipeline serializes
        // all flows, so the run lands on the classic whole-world path.
        Canonical {
            name: "impaired_path_prague_16ue",
            cfg: impaired_path_cell(
                16,
                "prague-fallback",
                ImpairmentSpec::bleaching(0.25).then_classic_hop(30e6),
                l4span_default(),
                7,
                dur,
            ),
            shards: 4,
        },
        // New in PR 10: bonded dual-connectivity XR — 8 FEC/ARQ media
        // uplinks, each striped across two cells' grants, with the
        // server-side join and shared-bottleneck detector on the hot
        // path. Shards are *requested* so the row also prints the
        // planner's rejection: a bonded flow spans both cells, so the
        // run lands on the classic whole-world path.
        Canonical {
            name: "bonded_xr_8ue",
            cfg: bonded_xr_8ue(7, dur),
            shards: 2,
        },
    ]
}

/// One scenario's gated rate as read from a `BENCH_PR*.json` artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchEntry {
    /// Scenario name.
    pub name: String,
    /// The rate the gate compares against: aggregate events/sec for
    /// sharded rows (which carry `aggregate_events_per_sec`), measured
    /// events per wall-clock second otherwise.
    pub events_per_sec: f64,
}

/// Extract `(name, gated rate)` pairs from one of our own
/// `BENCH_PR*.json` artifacts. The files are written by `perf_gate` in
/// a fixed shape (one scenario object per line), so a line-oriented
/// scan is exact — no JSON dependency in the offline workspace. A
/// sharded row's `aggregate_events_per_sec` takes precedence over its
/// wall-based `events_per_sec`: the wall rate depends on how many cores
/// the recording machine had, the aggregate does not.
pub fn parse_bench_json(text: &str) -> Vec<BenchEntry> {
    fn number_after(line: &str, key: &str) -> Option<f64> {
        let pos = line.find(key)?;
        let tail = &line[pos + key.len()..];
        let num: String = tail
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
            .collect();
        num.parse().ok()
    }
    let mut out = Vec::new();
    for line in text.lines() {
        let Some(npos) = line.find("\"name\": \"") else {
            continue;
        };
        let rest = &line[npos + 9..];
        let Some(nend) = rest.find('"') else { continue };
        let name = rest[..nend].to_string();
        let rate = number_after(line, "\"aggregate_events_per_sec\": ")
            .or_else(|| number_after(line, "\"events_per_sec\": "));
        if let Some(events_per_sec) = rate {
            out.push(BenchEntry {
                name,
                events_per_sec,
            });
        }
    }
    out
}

/// Extract the `"pr": N` header from a `BENCH_PR*.json` artifact.
pub fn parse_bench_pr(text: &str) -> Option<u32> {
    for line in text.lines() {
        let Some(pos) = line.find("\"pr\": ") else {
            continue;
        };
        let tail = &line[pos + 6..];
        let num: String = tail.chars().take_while(|c| c.is_ascii_digit()).collect();
        return num.parse().ok();
    }
    None
}

/// Fold a set of artifact measurements into the committed baseline
/// constants, keeping per-scenario maxima. Artifact values are
/// discounted by `headroom` first (see `perf_gate` for why), committed
/// constants are taken as-is, and scenarios that only exist in
/// artifacts are added.
///
/// A scenario recorded by two or more artifacts contributes its
/// **second-highest** value, not its maximum: a baseline must be
/// *reproducible*. One lucky recording window would otherwise ratchet
/// the bar permanently above what a clean run on the same machine can
/// reach (the PR 4 handover artifact sat ~23 % over every other PR's
/// recording of the same scenario — more than the `headroom` haircut
/// absorbs — and its fold made PR 9's own raw recording fail the
/// band). The anti-stale property survives: a regression can only
/// hide if the *two* best artifacts are both stale. A scenario seen
/// in exactly one artifact still binds with that value — there is
/// nothing to corroborate a first appearance against.
pub fn fold_best(
    baselines: &[(&str, f64)],
    artifacts: &[Vec<BenchEntry>],
    headroom: f64,
) -> Vec<(String, f64)> {
    // Per scenario, the two highest discounted artifact values seen.
    let mut top2: Vec<(String, f64, Option<f64>)> = Vec::new();
    for art in artifacts {
        for e in art {
            let v = e.events_per_sec * headroom;
            match top2.iter_mut().find(|(n, _, _)| *n == e.name) {
                Some((_, hi, second)) => {
                    if v > *hi {
                        *second = Some(*hi);
                        *hi = v;
                    } else {
                        *second = Some(second.map_or(v, |s| s.max(v)));
                    }
                }
                None => top2.push((e.name.clone(), v, None)),
            }
        }
    }
    let mut best: Vec<(String, f64)> = baselines
        .iter()
        .map(|&(n, v)| (n.to_string(), v))
        .collect();
    for (name, hi, second) in top2 {
        let v = second.unwrap_or(hi);
        match best.iter_mut().find(|(n, _)| *n == name) {
            Some((_, b)) => *b = b.max(v),
            None => best.push((name, v)),
        }
    }
    best
}

/// Look up one scenario in a baseline table.
pub fn baseline_for(table: &[(String, f64)], name: &str) -> Option<f64> {
    table.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
}

/// The verdict for one measured scenario against the baseline table.
#[derive(Debug, Clone, PartialEq)]
pub enum GateVerdict {
    /// Events/sec is within `max_regression` of the best prior baseline.
    Pass,
    /// Events/sec fell more than `max_regression` below the baseline.
    Fail {
        /// The bar that was missed (baseline × (1 − max_regression)).
        bar: f64,
        /// The best prior baseline itself.
        baseline: f64,
    },
    /// The scenario has no prior baseline (first appearance): there is
    /// nothing to regress against, so the check explicitly skips it.
    NoBaseline,
}

/// Check one scenario's events/sec against the best-prior table.
pub fn check_scenario(
    best: &[(String, f64)],
    name: &str,
    events_per_sec: f64,
    max_regression: f64,
) -> GateVerdict {
    match baseline_for(best, name) {
        None => GateVerdict::NoBaseline,
        Some(baseline) => {
            let bar = baseline * (1.0 - max_regression);
            if events_per_sec < bar {
                GateVerdict::Fail { bar, baseline }
            } else {
                GateVerdict::Pass
            }
        }
    }
}

/// Percent delta of `now` vs `prev` (`+` = faster). `None` when the
/// scenario has no previous measurement.
pub fn delta_pct(prev: Option<f64>, now: f64) -> Option<f64> {
    match prev {
        Some(p) if p > 0.0 => Some((now / p - 1.0) * 100.0),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entries(pairs: &[(&str, f64)]) -> Vec<BenchEntry> {
        pairs
            .iter()
            .map(|&(n, v)| BenchEntry {
                name: n.to_string(),
                events_per_sec: v,
            })
            .collect()
    }

    #[test]
    fn parse_bench_json_reads_rows_and_ignores_pre_pr2_fields() {
        let text = "{\n  \"pr\": 6,\n  \"sim_secs_per_scenario\": 8,\n  \"scenarios\": [\n    \
                    {\"name\": \"a\", \"events\": 10, \"wall_s\": 1.000, \"events_per_sec\": 1500000, \"wall_ms_per_sim_s\": 125.0},\n    \
                    {\"name\": \"b\", \"events\": 20, \"wall_s\": 2.000, \"events_per_sec\": 2000000.5, \"wall_ms_per_sim_s\": 250.0, \"pre_pr2_events_per_sec\": 955942, \"speedup_vs_pre_pr2\": 2.09}\n  ]\n}\n";
        let got = parse_bench_json(text);
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].name, "a");
        assert_eq!(got[0].events_per_sec, 1_500_000.0);
        assert_eq!(got[1].name, "b");
        assert_eq!(got[1].events_per_sec, 2_000_000.5);
        assert_eq!(parse_bench_pr(text), Some(6));
    }

    #[test]
    fn parse_bench_json_prefers_aggregate_rate_on_sharded_rows() {
        let text = "{\n  \"pr\": 8,\n  \"scenarios\": [\n    \
                    {\"name\": \"metro\", \"events\": 9, \"wall_s\": 4.000, \"events_per_sec\": 3000000, \"wall_ms_per_sim_s\": 2000.0, \"shards\": 8, \"busy_max_s\": 0.500, \"aggregate_events_per_sec\": 12000000, \"per_core_events_per_sec\": 1500000}\n  ]\n}\n";
        let got = parse_bench_json(text);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].name, "metro");
        // The wall-based 3M must lose to the 12M aggregate: the former
        // depends on the recording machine's core count.
        assert_eq!(got[0].events_per_sec, 12_000_000.0);
    }

    #[test]
    fn fold_best_takes_max_with_haircut_and_adds_new_scenarios() {
        let committed = [("a", 1_000_000.0), ("b", 2_000_000.0)];
        // Artifact 1: `a` faster even after the 10% haircut; `b` slower.
        // Artifact 2: a brand-new scenario `c`.
        let art1 = entries(&[("a", 1_500_000.0), ("b", 1_000_000.0)]);
        let art2 = entries(&[("c", 3_000_000.0)]);
        let best = fold_best(&committed, &[art1, art2], 0.9);
        assert_eq!(baseline_for(&best, "a"), Some(1_350_000.0));
        assert_eq!(baseline_for(&best, "b"), Some(2_000_000.0));
        assert_eq!(baseline_for(&best, "c"), Some(2_700_000.0));
        assert_eq!(baseline_for(&best, "missing"), None);
    }

    #[test]
    fn fold_best_discards_a_single_outlier_artifact() {
        // Five artifacts record `a` near 2.0M; one lucky window
        // recorded 2.6M. The fold must bind on the second-highest
        // (reproducible) value, not the outlier — otherwise one lucky
        // run ratchets the bar above every honest recording.
        let committed = [("a", 1_500_000.0)];
        let arts: Vec<_> = [2_000_000.0, 2_600_000.0, 1_950_000.0, 2_050_000.0]
            .iter()
            .map(|&v| entries(&[("a", v)]))
            .collect();
        let best = fold_best(&committed, &arts, 0.9);
        // second-highest = 2.05M, × 0.9 = 1.845M (> committed 1.5M).
        assert_eq!(baseline_for(&best, "a"), Some(1_845_000.0));
        // A scenario seen in exactly one artifact still binds with it.
        let one = fold_best(&committed, &[entries(&[("b", 3_000_000.0)])], 0.9);
        assert_eq!(baseline_for(&one, "b"), Some(2_700_000.0));
    }

    #[test]
    fn check_scenario_threshold_math_at_ten_percent() {
        let best = vec![("a".to_string(), 1_000_000.0)];
        // Exactly at the bar passes; a hair under fails.
        assert_eq!(
            check_scenario(&best, "a", 900_000.0, 0.10),
            GateVerdict::Pass
        );
        match check_scenario(&best, "a", 899_999.0, 0.10) {
            GateVerdict::Fail { bar, baseline } => {
                assert!((bar - 900_000.0).abs() < 1e-6);
                assert_eq!(baseline, 1_000_000.0);
            }
            v => panic!("expected Fail, got {v:?}"),
        }
    }

    #[test]
    fn check_scenario_skips_unknown_scenarios_explicitly() {
        let best = vec![("a".to_string(), 1_000_000.0)];
        assert_eq!(
            check_scenario(&best, "brand_new", 1.0, 0.10),
            GateVerdict::NoBaseline
        );
    }

    #[test]
    fn best_prior_selection_across_multiple_bench_files() {
        // Three PR artifacts measuring the same scenario: the bar
        // comes from the second-highest — not the most recent (a
        // regression must not hide behind one stale artifact) and not
        // the single peak (one lucky window must not ratchet the bar;
        // see `fold_best_discards_a_single_outlier_artifact`).
        let committed = [("a", 500_000.0)];
        let pr3 = entries(&[("a", 1_200_000.0)]);
        let pr4 = entries(&[("a", 2_000_000.0)]); // the peak
        let pr5 = entries(&[("a", 1_800_000.0)]); // most recent, slower
        let best = fold_best(&committed, &[pr3, pr4, pr5], 0.9);
        assert_eq!(baseline_for(&best, "a"), Some(1_620_000.0));
    }

    #[test]
    fn delta_pct_handles_missing_and_zero_previous() {
        assert_eq!(delta_pct(None, 1.0), None);
        assert_eq!(delta_pct(Some(0.0), 1.0), None);
        let d = delta_pct(Some(2_000_000.0), 2_200_000.0).unwrap();
        assert!((d - 10.0).abs() < 1e-9);
        let d = delta_pct(Some(2_000_000.0), 1_900_000.0).unwrap();
        assert!((d + 5.0).abs() < 1e-9);
    }

    #[test]
    fn canonical_scenarios_cover_the_tracked_set() {
        let set = canonical_scenarios(1);
        let names: Vec<&str> = set.iter().map(|c| c.name).collect();
        assert_eq!(
            names,
            [
                "congested_cubic_16ue",
                "prague_l4span_16ue",
                "bbr2_mobile_8ue",
                "handover_2cell_cubic_4ue",
                "interactive_apps_mixed",
                "video_call_bidir",
                "metro_1000ue_50cell",
                "impaired_path_prague_16ue",
                "bonded_xr_8ue",
            ]
        );
        // Only the metro world actually runs sharded. The impaired path
        // *requests* shards but its pipeline serializes all flows, so
        // the planner must reject it down to the classic whole-world
        // path — with the reason surfaced for the gate table.
        for c in &set {
            let want = match c.name {
                "metro_1000ue_50cell" => METRO_SHARDS,
                "impaired_path_prague_16ue" => 4,
                "bonded_xr_8ue" => 2,
                _ => 1,
            };
            assert_eq!(c.shards, want, "{}", c.name);
        }
        let impaired = &set[7];
        assert_eq!(
            l4span_harness::plan_shards_reason(&impaired.cfg, impaired.shards),
            (1, Some("impairment pipeline")),
            "the planner rejects the impaired path with its reason"
        );
        let bonded = &set[8];
        assert_eq!(
            l4span_harness::plan_shards_reason(&bonded.cfg, bonded.shards),
            (1, Some("bonded flow")),
            "the planner rejects the bonded world with its reason"
        );
    }
}

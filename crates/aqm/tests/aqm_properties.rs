//! AQM invariants under randomised traffic: router packet conservation,
//! DualPi2 probability bounds, CoDel state sanity.

use proptest::prelude::*;

use l4span_aqm::{CoDel, DualPi2, Red, Router, RouterAqm, Verdict};
use l4span_net::{Ecn, PacketBuf, TcpHeader};
use l4span_sim::{Duration, Instant, SimRng};

fn pkt(ecn: Ecn, payload: usize) -> PacketBuf {
    PacketBuf::tcp(1, 2, ecn, 0, &TcpHeader::default(), payload)
}

proptest! {
    /// Router conservation: in = out + dropped + queued + on-the-wire.
    #[test]
    fn router_conserves_packets(
        seed in any::<u64>(),
        arrivals in proptest::collection::vec((0u64..100_000, 0usize..3), 1..200),
        aqm_pick in 0usize..4,
        rate in 1e6f64..1e8,
        limit in 3000usize..1_000_000,
    ) {
        let aqm = match aqm_pick {
            0 => RouterAqm::Droptail,
            1 => RouterAqm::DualPi2(DualPi2::default()),
            2 => RouterAqm::ClassicEcn(Red::default()),
            _ => RouterAqm::CoDel(CoDel::new(true)),
        };
        let mut r = Router::new(rate, limit, aqm, SimRng::new(seed));
        let mut sent = 0u64;
        let mut received = 0u64;
        let mut t_sorted: Vec<(u64, usize)> = arrivals;
        t_sorted.sort();
        let mut last = Instant::ZERO;
        for (t_us, kind) in t_sorted {
            let now = Instant::from_micros(t_us);
            last = now;
            let ecn = [Ecn::NotEct, Ecn::Ect0, Ecn::Ect1][kind];
            r.enqueue(pkt(ecn, 1000), now);
            sent += 1;
            received += r.poll(now).len() as u64;
        }
        // Drain completely.
        let mut now = last;
        while let Some(d) = r.next_departure() {
            now = now.max(d);
            received += r.poll(now).len() as u64;
            if r.next_departure() == Some(d) {
                break; // safety against stuck service
            }
        }
        // Let any residual queue drain for a generous horizon.
        for k in 1..=200u64 {
            received += r.poll(now + Duration::from_millis(10 * k)).len() as u64;
        }
        prop_assert_eq!(
            sent,
            received + r.drops,
            "sent {} received {} drops {} queued_bytes {}",
            sent,
            received,
            r.drops,
            r.queued_bytes()
        );
        prop_assert_eq!(r.queued_bytes(), 0, "fully drained");
    }

    /// DualPi2 probabilities remain in range whatever the input history.
    #[test]
    fn dualpi2_probabilities_bounded(
        qdelays_us in proptest::collection::vec(0u64..2_000_000, 1..300)
    ) {
        let mut d = DualPi2::default();
        let mut t = Instant::ZERO;
        for q in qdelays_us {
            t += Duration::from_millis(16);
            d.update(Duration::from_micros(q), t);
            prop_assert!((0.0..=1.0).contains(&d.base_probability()));
            prop_assert!((0.0..=1.0).contains(&d.p_l4s()));
            prop_assert!((0.0..=1.0).contains(&d.p_classic()));
            prop_assert!(d.p_classic() <= d.p_l4s() + 1e-12, "square law ordering");
        }
    }

    /// CoDel never drops when asked to mark, and never acts below target.
    #[test]
    fn codel_respects_mode_and_target(
        sojourns_us in proptest::collection::vec(0u64..50_000, 1..500)
    ) {
        let mut c = CoDel::new(true);
        let mut t = Instant::ZERO;
        for s in sojourns_us {
            t += Duration::from_millis(1);
            let v = c.decide(Duration::from_micros(s), t);
            prop_assert_ne!(v, Verdict::Drop, "ECN mode never drops");
            if s < 5_000 {
                prop_assert_eq!(v, Verdict::Pass, "below target");
            }
        }
    }
}

//! CoDel (RFC 8289) and its ECN-marking variant.
//!
//! TC-RAN (Irazabal & Nikaein, the paper's baseline in §6.2.2) installs
//! CoDel / ECN-CoDel between the SDAP and PDCP layers with a fixed
//! 5 ms / 100 ms configuration. CoDel's control law: once the sojourn
//! time has exceeded `target` continuously for `interval`, drop (or mark)
//! the head packet and schedule the next drop at `interval/√count`.

use l4span_sim::{Duration, Instant};

use crate::Verdict;

/// CoDel state.
#[derive(Debug, Clone)]
pub struct CoDel {
    /// Acceptable standing sojourn time (default 5 ms).
    pub target: Duration,
    /// Sliding window over which target must be exceeded (default 100 ms).
    pub interval: Duration,
    /// Mark with CE instead of dropping (ECN-CoDel).
    pub ecn_mode: bool,
    first_above_time: Option<Instant>,
    dropping: bool,
    drop_next: Instant,
    count: u32,
}

impl CoDel {
    /// Standard 5 ms / 100 ms configuration.
    pub fn new(ecn_mode: bool) -> CoDel {
        CoDel::with_params(Duration::from_millis(5), Duration::from_millis(100), ecn_mode)
    }

    /// Custom parameters.
    pub fn with_params(target: Duration, interval: Duration, ecn_mode: bool) -> CoDel {
        CoDel {
            target,
            interval,
            ecn_mode,
            first_above_time: None,
            dropping: false,
            drop_next: Instant::ZERO,
            count: 0,
        }
    }

    /// Whether the control law is in its dropping state (diagnostics).
    pub fn dropping(&self) -> bool {
        self.dropping
    }

    fn control_action(&self) -> Verdict {
        if self.ecn_mode {
            Verdict::Mark
        } else {
            Verdict::Drop
        }
    }

    fn next_drop_delay(&self) -> Duration {
        Duration::from_secs_f64(
            self.interval.as_secs_f64() / f64::from(self.count.max(1)).sqrt(),
        )
    }

    /// Decide the fate of the packet at the queue head given its sojourn
    /// time. Call once per dequeued packet.
    pub fn decide(&mut self, sojourn: Duration, now: Instant) -> Verdict {
        if sojourn < self.target {
            self.first_above_time = None;
            if self.dropping {
                self.dropping = false;
            }
            return Verdict::Pass;
        }
        // Sojourn at or above target.
        match self.first_above_time {
            None => {
                self.first_above_time = Some(now + self.interval);
                Verdict::Pass
            }
            Some(fat) => {
                if !self.dropping {
                    if now >= fat {
                        // Enter dropping state.
                        self.dropping = true;
                        // RFC 8289: resume from a recent count if the last
                        // dropping episode was recent; keep it simple and
                        // restart at 1.
                        self.count = 1;
                        self.drop_next = now + self.next_drop_delay();
                        self.control_action()
                    } else {
                        Verdict::Pass
                    }
                } else if now >= self.drop_next {
                    self.count += 1;
                    self.drop_next = now + self.next_drop_delay();
                    self.control_action()
                } else {
                    Verdict::Pass
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn below_target_never_acts() {
        let mut c = CoDel::new(false);
        for ms in 0..1000 {
            let v = c.decide(Duration::from_millis(2), Instant::from_millis(ms));
            assert_eq!(v, Verdict::Pass);
        }
    }

    #[test]
    fn sustained_excess_triggers_drop_after_interval() {
        let mut c = CoDel::new(false);
        let mut first_drop = None;
        for ms in 0..500 {
            let v = c.decide(Duration::from_millis(20), Instant::from_millis(ms));
            if v == Verdict::Drop {
                first_drop = Some(ms);
                break;
            }
        }
        let at = first_drop.expect("must eventually drop");
        assert!(
            (100..=120).contains(&at),
            "first drop at {at} ms, expected ≈ interval"
        );
    }

    #[test]
    fn drop_rate_accelerates_with_count() {
        let mut c = CoDel::new(false);
        let mut drops = Vec::new();
        for ms in 0..2000 {
            if c.decide(Duration::from_millis(20), Instant::from_millis(ms)) == Verdict::Drop
            {
                drops.push(ms);
            }
        }
        assert!(drops.len() >= 4, "drops: {drops:?}");
        let gap1 = drops[1] - drops[0];
        let last_gap = drops[drops.len() - 1] - drops[drops.len() - 2];
        assert!(
            last_gap <= gap1,
            "intervals must shrink: first {gap1}, last {last_gap}"
        );
    }

    #[test]
    fn recovery_exits_dropping_state() {
        let mut c = CoDel::new(false);
        for ms in 0..300 {
            c.decide(Duration::from_millis(20), Instant::from_millis(ms));
        }
        assert!(c.dropping());
        let v = c.decide(Duration::from_millis(1), Instant::from_millis(301));
        assert_eq!(v, Verdict::Pass);
        assert!(!c.dropping());
    }

    #[test]
    fn ecn_variant_marks_instead_of_dropping() {
        let mut c = CoDel::new(true);
        let mut saw_mark = false;
        for ms in 0..500 {
            match c.decide(Duration::from_millis(20), Instant::from_millis(ms)) {
                Verdict::Mark => saw_mark = true,
                Verdict::Drop => panic!("ECN-CoDel must not drop"),
                Verdict::Pass => {}
            }
        }
        assert!(saw_mark);
    }
}

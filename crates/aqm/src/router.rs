//! A rate-served bottleneck router with a pluggable AQM: the wired
//! "L4S+" router of Fig. 1 and the mid-path middlebox whose rate change
//! shifts the bottleneck in Fig. 2.

use std::collections::VecDeque;

use l4span_net::{Ecn, PacketBuf};
use l4span_sim::{Duration, Instant, SimRng};

use crate::codel::CoDel;
use crate::dualpi2::DualPi2;
use crate::red::Red;
use crate::Verdict;

/// The AQM a [`Router`] runs.
#[derive(Debug, Clone)]
pub enum RouterAqm {
    /// Plain tail-drop FIFO with a byte limit.
    Droptail,
    /// RFC 9332 dual-queue coupled AQM.
    DualPi2(DualPi2),
    /// CoDel / ECN-CoDel single queue.
    CoDel(CoDel),
    /// RFC 3168 classic-ECN single queue: RED-style marking on one
    /// shared FIFO that treats `ECT(1)` exactly like `ECT(0)` and drops
    /// instead of marking for Not-ECT. The impairment subsystem's legacy
    /// hop where L4S and classic flows collide.
    ClassicEcn(Red),
}

#[derive(Debug)]
struct Queued {
    pkt: PacketBuf,
    enqueued_at: Instant,
}

/// A fixed-rate output port with a (dual) queue and an AQM.
#[derive(Debug)]
pub struct Router {
    rate_bps: f64,
    byte_limit: usize,
    aqm: RouterAqm,
    /// L-queue (ECT(1)/CE) — only used with DualPi2.
    l_queue: VecDeque<Queued>,
    /// Classic / everything queue.
    c_queue: VecDeque<Queued>,
    l_bytes: usize,
    c_bytes: usize,
    /// The packet currently on the wire and when it finishes.
    in_service: Option<(PacketBuf, Instant)>,
    /// When the wire last fell silent (RED idle-decay anchor).
    last_service_end: Instant,
    rng: SimRng,
    /// Cumulative drops (tail + AQM).
    pub drops: u64,
    /// Cumulative CE marks applied.
    pub marks: u64,
}

impl Router {
    /// Create a router serving at `rate_bps` with the given queue cap.
    pub fn new(rate_bps: f64, byte_limit: usize, aqm: RouterAqm, rng: SimRng) -> Router {
        Router {
            rate_bps,
            byte_limit,
            aqm,
            l_queue: VecDeque::new(),
            c_queue: VecDeque::new(),
            l_bytes: 0,
            c_bytes: 0,
            in_service: None,
            last_service_end: Instant::ZERO,
            rng,
            drops: 0,
            marks: 0,
        }
    }

    /// Change the service rate mid-run (the Fig. 2 bottleneck shift).
    pub fn set_rate(&mut self, rate_bps: f64) {
        self.rate_bps = rate_bps;
    }

    /// Current service rate.
    pub fn rate_bps(&self) -> f64 {
        self.rate_bps
    }

    /// Total queued bytes (both queues, not counting the wire).
    pub fn queued_bytes(&self) -> usize {
        self.l_bytes + self.c_bytes
    }

    fn is_l4s_pkt(p: &PacketBuf) -> bool {
        matches!(p.ecn(), Ecn::Ect1 | Ecn::Ce)
    }

    /// Offer a packet to the queue. Must be followed by `poll` to collect
    /// departures.
    pub fn enqueue(&mut self, pkt: PacketBuf, now: Instant) {
        if self.queued_bytes() + pkt.wire_len() > self.byte_limit {
            self.drops += 1;
            return;
        }
        let use_l = matches!(self.aqm, RouterAqm::DualPi2(_)) && Self::is_l4s_pkt(&pkt);
        let q = Queued {
            pkt,
            enqueued_at: now,
        };
        if use_l {
            self.l_bytes += q.pkt.wire_len();
            self.l_queue.push_back(q);
        } else {
            self.c_bytes += q.pkt.wire_len();
            self.c_queue.push_back(q);
        }
    }

    fn serialization(&self, pkt: &PacketBuf) -> Duration {
        Duration::from_secs_f64(pkt.wire_len() as f64 * 8.0 / self.rate_bps)
    }

    /// Sojourn time of the head of the classic queue (PI input).
    fn c_head_sojourn(&self, now: Instant) -> Duration {
        self.c_queue
            .front()
            .map(|q| now.saturating_since(q.enqueued_at))
            .unwrap_or(Duration::ZERO)
    }

    /// Collect packets whose transmission completed by `now`, starting
    /// new transmissions as the wire frees up.
    pub fn poll(&mut self, now: Instant) -> Vec<PacketBuf> {
        let mut out = Vec::new();
        loop {
            // Finish the wire.
            if let Some((_, done)) = &self.in_service {
                if *done <= now {
                    let (pkt, done) = self.in_service.take().expect("checked");
                    self.last_service_end = done;
                    out.push(pkt);
                } else {
                    break;
                }
            }
            // Start the next transmission.
            if self.in_service.is_some() {
                break;
            }
            // DualPi2's PI controller ticks on the classic sojourn.
            if let RouterAqm::DualPi2(dp) = &mut self.aqm {
                let qd = self
                    .c_queue
                    .front()
                    .map(|q| now.saturating_since(q.enqueued_at))
                    .unwrap_or(Duration::ZERO);
                dp.update(qd, now);
            }
            // DualPi2 scheduling: time-shifted FIFO (RFC 9332 §4.1) — the
            // L-queue head gets a 50 ms (RFC default) head start: it wins
            // unless the classic head has waited 50 ms longer, which
            // keeps L latency at its step target without ever starving
            // the classic queue the way strict priority would.
            let shift = Duration::from_millis(50);
            let from_l = match (self.l_queue.front(), self.c_queue.front()) {
                (Some(l), Some(c)) => {
                    l.enqueued_at.saturating_since(Instant::ZERO)
                        <= c.enqueued_at.saturating_since(Instant::ZERO) + shift
                }
                (Some(_), None) => true,
                _ => false,
            };
            let Some(mut q) = (if from_l {
                self.l_queue.pop_front()
            } else {
                self.c_queue.pop_front()
            }) else {
                break;
            };
            if from_l {
                self.l_bytes -= q.pkt.wire_len();
            } else {
                self.c_bytes -= q.pkt.wire_len();
            }
            let sojourn = now.saturating_since(q.enqueued_at);
            let verdict = match &mut self.aqm {
                RouterAqm::Droptail => Verdict::Pass,
                RouterAqm::DualPi2(dp) => dp.decide(q.pkt.ecn(), sojourn, &mut self.rng),
                RouterAqm::CoDel(cd) => {
                    let v = cd.decide(sojourn, now);
                    // CoDel in ECN mode can only mark ECT packets.
                    if v == Verdict::Mark && !q.pkt.ecn().is_ect() {
                        Verdict::Drop
                    } else {
                        v
                    }
                }
                RouterAqm::ClassicEcn(red) => {
                    // Classic RED idle handling: if the wire sat silent
                    // before this packet arrived, decay the EWMA as if
                    // the gap's worth of typical packets had flowed with
                    // zero sojourn, so a long-drained burst isn't still
                    // punishing fresh traffic.
                    let idle = q.enqueued_at.saturating_since(self.last_service_end);
                    let typical = 1500.0 * 8.0 / self.rate_bps;
                    red.decay_idle(idle.as_secs_f64() / typical);
                    let v = red.decide(sojourn, &mut self.rng);
                    // RFC 3168 §6.1.1: mark ECT packets, drop the rest.
                    if v == Verdict::Mark && !q.pkt.ecn().is_ect() {
                        Verdict::Drop
                    } else {
                        v
                    }
                }
            };
            match verdict {
                Verdict::Drop => {
                    self.drops += 1;
                    continue;
                }
                Verdict::Mark => {
                    self.marks += 1;
                    let ce = q.pkt.ecn().remark_to(Ecn::Ce);
                    q.pkt.set_ecn(ce);
                }
                Verdict::Pass => {}
            }
            let done = now + self.serialization(&q.pkt);
            self.in_service = Some((q.pkt, done));
        }
        out
    }

    /// When the packet on the wire finishes, if any (the harness's next
    /// poll time).
    pub fn next_departure(&self) -> Option<Instant> {
        self.in_service.as_ref().map(|&(_, d)| d)
    }

    /// Sojourn diagnostics for tests.
    pub fn head_sojourn(&self, now: Instant) -> Duration {
        self.c_head_sojourn(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use l4span_net::TcpHeader;

    fn pkt(ecn: Ecn, len: usize) -> PacketBuf {
        PacketBuf::tcp(1, 2, ecn, 0, &TcpHeader::default(), len)
    }

    fn drain(r: &mut Router, until: Instant) -> Vec<PacketBuf> {
        let mut out = Vec::new();
        out.extend(r.poll(Instant::ZERO));
        while let Some(d) = r.next_departure() {
            if d > until {
                break;
            }
            out.extend(r.poll(d));
        }
        out.extend(r.poll(until));
        out
    }

    #[test]
    fn serves_at_configured_rate() {
        // 12 Mbit/s, 1500-byte packets => 1 ms each.
        let mut r = Router::new(12e6, 1 << 20, RouterAqm::Droptail, SimRng::new(1));
        for _ in 0..10 {
            r.enqueue(pkt(Ecn::NotEct, 1460), Instant::ZERO);
        }
        let out = drain(&mut r, Instant::from_millis(5));
        assert_eq!(out.len(), 5, "5 ms at 1 ms/packet");
        let out2 = drain(&mut r, Instant::from_millis(10));
        assert_eq!(out2.len() + out.len(), 10);
    }

    #[test]
    fn droptail_honours_byte_limit() {
        let mut r = Router::new(1e6, 3000, RouterAqm::Droptail, SimRng::new(1));
        for _ in 0..5 {
            r.enqueue(pkt(Ecn::NotEct, 1460), Instant::ZERO);
        }
        assert_eq!(r.drops, 3, "only two 1500-byte packets fit");
    }

    #[test]
    fn dualpi2_marks_l4s_sojourn() {
        // Slow link so queue builds: L-queue packets see > 1 ms sojourn.
        let mut r = Router::new(
            1e6,
            1 << 20,
            RouterAqm::DualPi2(DualPi2::default()),
            SimRng::new(1),
        );
        for _ in 0..20 {
            r.enqueue(pkt(Ecn::Ect1, 1460), Instant::ZERO);
        }
        let out = drain(&mut r, Instant::from_millis(300));
        assert_eq!(out.len(), 20);
        let marked = out.iter().filter(|p| p.ecn() == Ecn::Ce).count();
        assert!(marked >= 18, "all but the first see >1 ms: {marked}");
    }

    #[test]
    fn dualpi2_gives_l_queue_priority() {
        let mut r = Router::new(
            1.2e7,
            1 << 20,
            RouterAqm::DualPi2(DualPi2::default()),
            SimRng::new(1),
        );
        // Fill classic first, then L: L packets should still come out
        // ahead of most classic ones.
        for _ in 0..5 {
            r.enqueue(pkt(Ecn::Ect0, 1460), Instant::ZERO);
        }
        for _ in 0..5 {
            r.enqueue(pkt(Ecn::Ect1, 1460), Instant::ZERO);
        }
        let out = drain(&mut r, Instant::from_millis(20));
        // First out was already on the wire (classic), but the next four
        // should be L-queue.
        let l4s_positions: Vec<usize> = out
            .iter()
            .enumerate()
            .filter(|(_, p)| matches!(p.ecn(), Ecn::Ect1 | Ecn::Ce))
            .map(|(i, _)| i)
            .collect();
        assert!(
            l4s_positions.iter().all(|&i| i <= 5),
            "L4S packets served first: {l4s_positions:?}"
        );
    }

    #[test]
    fn codel_marks_under_standing_queue() {
        let mut r = Router::new(
            2e6,
            1 << 20,
            RouterAqm::CoDel(CoDel::new(true)),
            SimRng::new(1),
        );
        // Feed a standing queue for 400 ms.
        let mut out = Vec::new();
        for step in 0..400u64 {
            let now = Instant::from_millis(step);
            r.enqueue(pkt(Ecn::Ect0, 1460), now);
            out.extend(r.poll(now));
        }
        let marked = out.iter().filter(|p| p.ecn() == Ecn::Ce).count();
        assert!(marked > 0, "ECN-CoDel must mark a standing queue");
        assert_eq!(r.drops, 0, "and never drop ECT packets");
    }

    #[test]
    fn classic_ecn_hop_marks_ect1_like_ect0_and_drops_not_ect() {
        // A standing queue at the RFC 3168 hop must CE-mark ECT(1)
        // exactly as it would ECT(0) — the hop predates L4S — and can
        // only signal Not-ECT traffic by dropping.
        for (ecn, expect_marks) in [(Ecn::Ect1, true), (Ecn::Ect0, true), (Ecn::NotEct, false)] {
            let mut r = Router::new(
                2e6,
                1 << 20,
                RouterAqm::ClassicEcn(Red::default()),
                SimRng::new(1),
            );
            let mut out = Vec::new();
            for step in 0..400u64 {
                let now = Instant::from_millis(step);
                r.enqueue(pkt(ecn, 1460), now);
                out.extend(r.poll(now));
            }
            let marked = out.iter().filter(|p| p.ecn() == Ecn::Ce).count();
            if expect_marks {
                assert!(marked > 0, "{ecn:?}: standing queue must mark");
                assert_eq!(r.drops, 0, "{ecn:?}: ECT is marked, not dropped");
            } else {
                assert_eq!(marked, 0, "Not-ECT can never be CE-marked");
                assert!(r.drops > 0, "Not-ECT standing queue must drop");
            }
        }
    }

    #[test]
    fn classic_ecn_hop_shares_one_fifo() {
        // Unlike DualPi2 there is no L-queue: ECT(1) arrivals queue
        // strictly behind earlier classic arrivals.
        let mut r = Router::new(
            1.2e7,
            1 << 20,
            RouterAqm::ClassicEcn(Red::default()),
            SimRng::new(1),
        );
        for _ in 0..5 {
            r.enqueue(pkt(Ecn::Ect0, 1460), Instant::ZERO);
        }
        for _ in 0..5 {
            r.enqueue(pkt(Ecn::Ect1, 1460), Instant::ZERO);
        }
        let out = drain(&mut r, Instant::from_millis(20));
        let first_l4s = out
            .iter()
            .position(|p| p.ecn() == Ecn::Ect1)
            .expect("l4s packets depart");
        assert!(
            first_l4s >= 5,
            "FIFO order: all 5 classic packets depart first (got {first_l4s})"
        );
    }

    #[test]
    fn rate_change_shifts_bottleneck() {
        let mut r = Router::new(40e6, 1 << 22, RouterAqm::Droptail, SimRng::new(1));
        r.enqueue(pkt(Ecn::NotEct, 1460), Instant::ZERO);
        r.poll(Instant::ZERO);
        let fast = r.next_departure().unwrap();
        let mut r2 = Router::new(40e6, 1 << 22, RouterAqm::Droptail, SimRng::new(1));
        r2.set_rate(20e6);
        r2.enqueue(pkt(Ecn::NotEct, 1460), Instant::ZERO);
        r2.poll(Instant::ZERO);
        let slow = r2.next_departure().unwrap();
        assert!(slow > fast);
    }
}

//! DualQ Coupled AQM (RFC 9332): the wired L4S reference.
//!
//! Two queues: the L-queue (ECT(1)/CE traffic) gets a shallow step
//! marking threshold plus the coupled probability `p_CL = k·p'`; the
//! C-queue (classic) runs a PI controller whose output `p'` is squared
//! for classic drop/mark (`p_C = p'²`), preserving window fairness
//! between scalable and classic flows.
//!
//! §6.3.1 of the paper re-implements exactly this at the CU to show a
//! fixed sojourn-time rule cannot track a fading wireless link — our
//! harness does the same by driving [`DualPi2::decide`] with RLC-queue
//! sojourn estimates.

use l4span_net::Ecn;
use l4span_sim::{Duration, Instant, SimRng};

use crate::Verdict;

/// DualPi2 state (per bottleneck).
#[derive(Debug, Clone)]
pub struct DualPi2 {
    /// PI target delay for the classic queue (RFC 9332 default 15 ms).
    pub target: Duration,
    /// L-queue step-marking threshold (RFC 9332 default 1 ms).
    pub l_threshold: Duration,
    /// Coupling factor k (default 2).
    pub k: f64,
    /// PI integral gain α (per update, per second of error).
    pub alpha: f64,
    /// PI proportional gain β.
    pub beta: f64,
    /// Controller update period (default 16 ms).
    pub t_update: Duration,
    /// Base probability p′.
    p: f64,
    prev_qdelay: Duration,
    next_update: Instant,
}

impl Default for DualPi2 {
    fn default() -> Self {
        DualPi2::new(Duration::from_millis(15), Duration::from_millis(1))
    }
}

impl DualPi2 {
    /// Create with the given classic target and L-queue step threshold.
    pub fn new(target: Duration, l_threshold: Duration) -> DualPi2 {
        DualPi2 {
            target,
            l_threshold,
            k: 2.0,
            alpha: 0.16,
            beta: 3.2,
            t_update: Duration::from_millis(16),
            p: 0.0,
            prev_qdelay: Duration::ZERO,
            next_update: Instant::ZERO,
        }
    }

    /// Current base probability p′ (diagnostics).
    pub fn base_probability(&self) -> f64 {
        self.p
    }

    /// Advance the PI controller if an update is due. `qdelay_c` is the
    /// classic queue's current sojourn time.
    pub fn update(&mut self, qdelay_c: Duration, now: Instant) {
        if now < self.next_update {
            return;
        }
        self.next_update = now + self.t_update;
        let err = qdelay_c.as_secs_f64() - self.target.as_secs_f64();
        let delta = qdelay_c.as_secs_f64() - self.prev_qdelay.as_secs_f64();
        self.p += self.alpha * err + self.beta * delta;
        self.p = self.p.clamp(0.0, 1.0);
        self.prev_qdelay = qdelay_c;
    }

    /// Probability the coupled L-queue marking applies (k·p′, capped).
    pub fn p_l4s(&self) -> f64 {
        (self.k * self.p).min(1.0)
    }

    /// Probability for the classic queue (p′², the square law).
    pub fn p_classic(&self) -> f64 {
        (self.p * self.p).min(1.0)
    }

    /// Decide the fate of a packet at dequeue. `sojourn` is the packet's
    /// own queueing delay; `ecn` its codepoint.
    pub fn decide(&mut self, ecn: Ecn, sojourn: Duration, rng: &mut SimRng) -> Verdict {
        let l4s = matches!(ecn, Ecn::Ect1 | Ecn::Ce);
        if l4s {
            // Step threshold OR coupled probability.
            if sojourn > self.l_threshold || rng.chance(self.p_l4s()) {
                Verdict::Mark
            } else {
                Verdict::Pass
            }
        } else if rng.chance(self.p_classic()) {
            if ecn == Ecn::Ect0 {
                Verdict::Mark
            } else {
                Verdict::Drop
            }
        } else {
            Verdict::Pass
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pi_rises_with_standing_queue_and_falls_when_empty() {
        let mut d = DualPi2::default();
        let mut t = Instant::ZERO;
        for _ in 0..100 {
            d.update(Duration::from_millis(50), t); // 35 ms over target
            t += Duration::from_millis(16);
        }
        assert!(d.base_probability() > 0.05, "p {}", d.base_probability());
        for _ in 0..400 {
            d.update(Duration::ZERO, t);
            t += Duration::from_millis(16);
        }
        assert!(d.base_probability() < 0.01, "p {}", d.base_probability());
    }

    #[test]
    fn square_law_coupling() {
        let d = DualPi2 {
            p: 0.1,
            ..DualPi2::default()
        };
        assert!((d.p_l4s() - 0.2).abs() < 1e-12);
        assert!((d.p_classic() - 0.01).abs() < 1e-12);
    }

    #[test]
    fn l_queue_step_marks_over_threshold() {
        let mut d = DualPi2::default();
        let mut rng = SimRng::new(1);
        let v = d.decide(Ecn::Ect1, Duration::from_millis(2), &mut rng);
        assert_eq!(v, Verdict::Mark);
        let v = d.decide(Ecn::Ect1, Duration::from_micros(100), &mut rng);
        assert_eq!(v, Verdict::Pass, "below step and p'=0");
    }

    #[test]
    fn classic_marks_ect0_drops_notect() {
        let mut d = DualPi2 {
            p: 1.0, // force
            ..DualPi2::default()
        };
        let mut rng = SimRng::new(2);
        assert_eq!(
            d.decide(Ecn::Ect0, Duration::from_millis(20), &mut rng),
            Verdict::Mark
        );
        assert_eq!(
            d.decide(Ecn::NotEct, Duration::from_millis(20), &mut rng),
            Verdict::Drop
        );
    }

    #[test]
    fn update_respects_period() {
        let mut d = DualPi2::default();
        d.update(Duration::from_millis(100), Instant::ZERO);
        let p1 = d.base_probability();
        // 1 ms later: no update yet.
        d.update(Duration::from_millis(100), Instant::from_millis(1));
        assert_eq!(d.base_probability(), p1);
        d.update(Duration::from_millis(100), Instant::from_millis(17));
        assert!(d.base_probability() > p1);
    }
}

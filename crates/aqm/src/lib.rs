//! Active queue management baselines.
//!
//! Three AQMs appear in the paper's evaluation:
//!
//! * [`dualpi2`] — the DualQ Coupled AQM of RFC 9332, the wired-L4S
//!   reference that Fig. 2(a) runs and §6.3.1 shows failing in the RAN;
//! * [`codel`] — CoDel / ECN-CoDel (RFC 8289), the queueing discipline
//!   TC-RAN installs inside the RAN (§6.2.2's baseline);
//! * [`router`] — a rate-served bottleneck router combining a queue, an
//!   AQM, and a transmission clock: the "L4S+ router" and wired
//!   middleboxes of Fig. 1/Fig. 2.
//!
//! A fourth decider supports the impairment subsystem rather than the
//! paper's own evaluation:
//!
//! * [`red`] — RED-style classic ECN marking on a single shared FIFO,
//!   the RFC 3168 hop that never learned about L4S. It treats `ECT(1)`
//!   exactly like `ECT(0)`, which is the coexistence hazard the
//!   impairment scenarios probe.
//!
//! All deciders share the [`Verdict`] vocabulary so the harness can bolt
//! them onto the CU for the DualPi2-in-RAN and TC-RAN ablations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codel;
pub mod dualpi2;
pub mod red;
pub mod router;

pub use codel::CoDel;
pub use dualpi2::DualPi2;
pub use red::Red;
pub use router::{Router, RouterAqm};

/// What an AQM wants done with one packet at dequeue time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Forward unchanged.
    Pass,
    /// Forward with the CE codepoint set.
    Mark,
    /// Discard.
    Drop,
}

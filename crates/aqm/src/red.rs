//! RED-style classic ECN AQM: the RFC 3168 single-queue hop.
//!
//! This is the impairment subsystem's model of a legacy internet router
//! that deployed RFC 3168 ECN with a RED-lineage marking law and never
//! learned about L4S: one shared FIFO, one marking probability, and no
//! distinction between `ECT(0)` and `ECT(1)`. That last property is the
//! coexistence hazard Briscoe's scaling-requirements paper names — a
//! scalable (Prague) flow treats these classic marks as shallow-queue
//! L4S signals, responds `1/p` instead of `1/√p`, and starves any
//! classic flow sharing the queue unless it detects the situation and
//! falls back.
//!
//! The marking law is classic gentle-RED on the EWMA of dequeue sojourn
//! time: below `min_th` nothing happens, between `min_th` and `max_th`
//! the mark probability ramps linearly to `max_p`, above `max_th` every
//! ECT packet is marked (and Not-ECT dropped, which the [`Router`]
//! enforces by converting `Mark` to `Drop` for non-ECT traffic).
//!
//! [`Router`]: crate::Router

use l4span_sim::{Duration, SimRng};

use crate::Verdict;

/// RED-on-sojourn state for the RFC 3168 classic-ECN hop.
///
/// The default thresholds model a *deep legacy buffer* (20 ms / 100 ms),
/// not a modern sub-10 ms AQM: a router that deployed RED when queue
/// targets were sized for loss-based flows. That depth is also what
/// makes the hop's marks distinguishable at a Prague sender — every
/// mark coincides with classic-scale (≫ L4S-target) queueing delay.
#[derive(Debug, Clone)]
pub struct Red {
    /// Sojourn EWMA below this never marks (default 20 ms).
    pub min_th: Duration,
    /// Sojourn EWMA at or above this marks at `max_p` (default 100 ms).
    pub max_th: Duration,
    /// Marking probability at `max_th` (default 0.1; gentle-RED ramps
    /// from there to 1.0 at `2 * max_th`).
    pub max_p: f64,
    /// EWMA gain (default 1/16).
    pub weight: f64,
    avg: f64,
}

impl Default for Red {
    fn default() -> Red {
        Red {
            min_th: Duration::from_millis(20),
            max_th: Duration::from_millis(100),
            max_p: 0.1,
            weight: 1.0 / 16.0,
            avg: 0.0,
        }
    }
}

impl Red {
    /// Custom thresholds.
    pub fn with_params(min_th: Duration, max_th: Duration, max_p: f64) -> Red {
        Red {
            min_th,
            max_th,
            max_p,
            ..Red::default()
        }
    }

    /// Current sojourn EWMA (diagnostics).
    pub fn avg_sojourn(&self) -> Duration {
        Duration::from_secs_f64(self.avg.max(0.0))
    }

    /// Decay the EWMA across a link-idle period, as if `m` zero-sojourn
    /// packets had been dequeued (classic RED's idle handling: without
    /// it a burst's elevated average keeps punishing traffic long after
    /// the queue has drained).
    pub fn decay_idle(&mut self, m: f64) {
        if m > 0.0 {
            self.avg *= (1.0 - self.weight).powf(m);
        }
    }

    /// Decide the fate of the packet at the queue head given its sojourn
    /// time. Call once per dequeued packet. The caller converts `Mark`
    /// to `Drop` for Not-ECT packets (RFC 3168 §6.1.1).
    pub fn decide(&mut self, sojourn: Duration, rng: &mut SimRng) -> Verdict {
        self.avg += self.weight * (sojourn.as_secs_f64() - self.avg);
        let min = self.min_th.as_secs_f64();
        let max = self.max_th.as_secs_f64();
        let p = if self.avg < min {
            0.0
        } else if self.avg < max {
            self.max_p * (self.avg - min) / (max - min)
        } else {
            // Gentle-RED: ramp from max_p at max_th to 1.0 at 2*max_th.
            (self.max_p + (1.0 - self.max_p) * (self.avg - max) / max).min(1.0)
        };
        if p > 0.0 && rng.chance(p) {
            Verdict::Mark
        } else {
            Verdict::Pass
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_queue_never_marks() {
        let mut red = Red::default();
        let mut rng = SimRng::new(7);
        for _ in 0..1000 {
            assert_eq!(
                red.decide(Duration::from_millis(1), &mut rng),
                Verdict::Pass
            );
        }
    }

    #[test]
    fn standing_queue_marks_with_ramping_probability() {
        let mut red = Red::default();
        let mut rng = SimRng::new(7);
        let mut marks = 0u32;
        // 60 ms standing sojourn: EWMA converges between min and max.
        for _ in 0..1000 {
            if red.decide(Duration::from_millis(60), &mut rng) == Verdict::Mark {
                marks += 1;
            }
        }
        // p ≈ 0.1 * 40/80 = 0.05 once converged.
        assert!((20..200).contains(&marks), "ramp region marks: {marks}");
    }

    #[test]
    fn idle_decay_forgets_a_burst() {
        let mut red = Red::default();
        let mut rng = SimRng::new(7);
        for _ in 0..200 {
            red.decide(Duration::from_millis(500), &mut rng);
        }
        assert!(red.avg_sojourn() > red.max_th);
        // A long idle period (many typical service times) must pull the
        // average back under min_th so fresh traffic starts clean.
        red.decay_idle(200.0);
        assert!(red.avg_sojourn() < red.min_th, "{:?}", red.avg_sojourn());
    }

    #[test]
    fn saturated_queue_marks_everything() {
        let mut red = Red::default();
        let mut rng = SimRng::new(7);
        // Drive the EWMA far past 2*max_th.
        for _ in 0..200 {
            red.decide(Duration::from_millis(500), &mut rng);
        }
        let marks = (0..100)
            .filter(|_| red.decide(Duration::from_millis(500), &mut rng) == Verdict::Mark)
            .count();
        assert_eq!(marks, 100, "gentle-RED saturates at p=1");
    }
}

//! Egress-rate estimation and sojourn-time prediction (paper §4.3.3).
//!
//! On each F1-U report, newly-transmitted bytes enter a sliding window of
//! width `W = τ_c/2` (half the channel coherence time):
//!
//! * Eq. 3 — the instantaneous egress rate `r_T_k` is the byte sum over
//!   the window divided by `W`;
//! * Eq. 4 — the smoothed estimate `r̂_e` is the mean of the `r_T_i`
//!   samples inside the window (so every byte involved was transmitted
//!   within one coherence time, during which the channel is stable);
//! * the error spread `ê_re` is the standard deviation of those samples
//!   (the paper estimates the error std from the ground-truth dequeue
//!   rate's std over the last window);
//! * Eq. 5 — the predicted sojourn time is `τ̂ = N_queue / r̂_e`.

use std::collections::VecDeque;

use l4span_sim::{Duration, Instant};

/// Sliding-window egress-rate estimator for one DRB.
#[derive(Debug)]
pub struct EgressEstimator {
    window: Duration,
    /// (t_txed, bytes) of recently transmitted SDUs.
    txed: VecDeque<(Instant, usize)>,
    /// Byte sum of `txed`.
    txed_bytes: usize,
    /// (t, instantaneous rate) samples.
    samples: VecDeque<(Instant, f64)>,
    /// First feedback timestamp ever seen (warm-up guard).
    first_txed: Option<Instant>,
    /// Latest feedback timestamp.
    last_txed: Instant,
    /// (t, smoothed rate) history for the attainable-rate max filter.
    rate_history: VecDeque<(Instant, f64)>,
}

/// The attainable-rate memory horizon, in estimation windows. ~1.25 s at
/// the default window: long enough to bridge a sender's post-backoff dip,
/// short enough to track genuine channel degradation.
const PEAK_WINDOWS: u64 = 100;

impl EgressEstimator {
    /// Create with window `W = τ_c / 2`.
    pub fn new(window: Duration) -> EgressEstimator {
        EgressEstimator {
            window,
            txed: VecDeque::new(),
            txed_bytes: 0,
            samples: VecDeque::new(),
            first_txed: None,
            last_txed: Instant::ZERO,
            rate_history: VecDeque::new(),
        }
    }

    /// The configured window.
    pub fn window(&self) -> Duration {
        self.window
    }

    /// Forget everything learned: the estimator returns to its
    /// just-constructed state, so [`EgressEstimator::rate`] is `None`
    /// until a full window of fresh feedback accumulates. This is the
    /// `ColdStart` half of the marker handover policy — the target
    /// cell's egress rate shares nothing with the source cell's, so a
    /// scenario may prefer re-learning from scratch over marking
    /// against stale estimates.
    pub fn reset(&mut self) {
        self.txed.clear();
        self.txed_bytes = 0;
        self.samples.clear();
        self.first_txed = None;
        self.last_txed = Instant::ZERO;
        self.rate_history.clear();
    }

    fn prune(&mut self, now: Instant) {
        while let Some(&(t, b)) = self.txed.front() {
            if now.saturating_since(t) > self.window {
                self.txed.pop_front();
                self.txed_bytes -= b;
            } else {
                break;
            }
        }
        while let Some(&(t, _)) = self.samples.front() {
            if now.saturating_since(t) > self.window {
                self.samples.pop_front();
            } else {
                break;
            }
        }
    }

    /// Record newly-transmitted bytes at their feedback timestamp and
    /// refresh the instantaneous-rate sample (Eq. 3).
    pub fn on_txed(&mut self, t_txed: Instant, bytes: usize) {
        if self.first_txed.is_none() {
            self.first_txed = Some(t_txed);
        }
        self.last_txed = self.last_txed.max(t_txed);
        self.txed.push_back((t_txed, bytes));
        self.txed_bytes += bytes;
        self.prune(t_txed);
        let r = self.txed_bytes as f64 / self.window.as_secs_f64();
        self.samples.push_back((t_txed, r));
        if let Some(smoothed) = self.rate() {
            self.rate_history.push_back((t_txed, smoothed));
            let horizon = self.window * PEAK_WINDOWS;
            while let Some(&(t, _)) = self.rate_history.front() {
                if t_txed.saturating_since(t) > horizon {
                    self.rate_history.pop_front();
                } else {
                    break;
                }
            }
        }
    }

    /// The egress rate the RAN can *offer* this DRB: the maximum of the
    /// smoothed estimate over the recent past. The marking rules use this
    /// rather than the instantaneous Eq. 4 value because the latter
    /// tracks the sender's own rate whenever the queue is shallow — and a
    /// sender that has just backed off would otherwise be judged against
    /// its own slow-down (a positive-feedback under-utilisation spiral,
    /// the classic-flow analogue of the §4.3.3 error-cost analysis).
    pub fn attainable_rate(&self) -> Option<f64> {
        let current = self.rate()?;
        let peak = self
            .rate_history
            .iter()
            .map(|&(_, r)| r)
            .fold(current, f64::max);
        Some(peak)
    }

    /// Smoothed egress rate r̂_e in bytes/sec (Eq. 4).
    ///
    /// `None` until a full estimation window of feedback history exists:
    /// Eq. 3 divides by the fixed window length, so before the window has
    /// filled once the quotient would understate the true rate by up to
    /// the fill factor and poison the marking probabilities.
    pub fn rate(&self) -> Option<f64> {
        let first = self.first_txed?;
        if self.last_txed.saturating_since(first) < self.window {
            return None;
        }
        if self.samples.is_empty() {
            return None;
        }
        let sum: f64 = self.samples.iter().map(|&(_, r)| r).sum();
        Some(sum / self.samples.len() as f64)
    }

    /// Standard deviation ê_re of the rate samples in the window.
    pub fn rate_std(&self) -> f64 {
        let n = self.samples.len();
        if n < 2 {
            return 0.0;
        }
        let mean = self.rate().expect("non-empty");
        let var: f64 = self
            .samples
            .iter()
            .map(|&(_, r)| (r - mean) * (r - mean))
            .sum::<f64>()
            / n as f64;
        var.sqrt()
    }

    /// Predicted sojourn time of a standing queue of `n_queue` bytes
    /// (Eq. 5). `None` before the first estimate or at zero rate.
    pub fn predict_sojourn(&self, n_queue: usize) -> Option<Duration> {
        let r = self.rate()?;
        if r <= 0.0 {
            return None;
        }
        Some(Duration::from_secs_f64(n_queue as f64 / r))
    }

    /// Number of live rate samples (diagnostics).
    pub fn sample_count(&self) -> usize {
        self.samples.len()
    }

    /// Resident memory estimate (Table 1 accounting).
    pub fn memory_bytes(&self) -> usize {
        self.txed.capacity() * core::mem::size_of::<(Instant, usize)>()
            + self.samples.capacity() * core::mem::size_of::<(Instant, f64)>()
            + core::mem::size_of::<Self>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn est() -> EgressEstimator {
        EgressEstimator::new(Duration::from_micros(12_450))
    }

    #[test]
    fn steady_feed_estimates_true_rate() {
        let mut e = est();
        // 1500 bytes every 500 us = 3 MB/s, for 50 ms.
        for k in 0..100u64 {
            e.on_txed(Instant::from_micros(500 * k), 1500);
        }
        let r = e.rate().unwrap();
        assert!(
            (r - 3.0e6).abs() < 0.15e6,
            "estimated {r}, expected 3e6 B/s"
        );
        // Steady rate: tiny std.
        assert!(e.rate_std() < 0.1e6, "std {}", e.rate_std());
    }

    #[test]
    fn empty_estimator_returns_none() {
        let e = est();
        assert_eq!(e.rate(), None);
        assert_eq!(e.predict_sojourn(1000), None);
        assert_eq!(e.rate_std(), 0.0);
    }

    #[test]
    fn sojourn_prediction_is_queue_over_rate() {
        let mut e = est();
        for k in 0..100u64 {
            e.on_txed(Instant::from_micros(500 * k), 1500);
        }
        let r = e.rate().unwrap();
        let q = 30_000usize;
        let pred = e.predict_sojourn(q).unwrap();
        let expect = q as f64 / r;
        assert!((pred.as_secs_f64() - expect).abs() < 1e-9);
    }

    #[test]
    fn rate_drop_is_tracked_within_a_window() {
        let mut e = est();
        // 3 MB/s then a hard drop to 0.6 MB/s.
        for k in 0..60u64 {
            e.on_txed(Instant::from_micros(500 * k), 1500);
        }
        for k in 0..24u64 {
            e.on_txed(Instant::from_micros(30_000 + 2_500 * k), 1500);
        }
        let r = e.rate().unwrap();
        assert!(
            r < 1.2e6,
            "estimate {r} should have tracked the rate drop"
        );
        // And the volatility shows up in the spread over the transition…
        // (samples within one window of the last feedback)
    }

    #[test]
    fn volatile_rate_has_larger_std_than_steady() {
        let mut steady = est();
        let mut volatile = est();
        for k in 0..100u64 {
            steady.on_txed(Instant::from_micros(500 * k), 1500);
            // Bursty: alternate large and small slot batches.
            let bytes = if k % 2 == 0 { 2900 } else { 100 };
            volatile.on_txed(Instant::from_micros(500 * k), bytes);
        }
        assert!(volatile.rate_std() > steady.rate_std());
    }

    #[test]
    fn reset_returns_to_cold_state_and_relearns() {
        let mut e = est();
        for k in 0..100u64 {
            e.on_txed(Instant::from_micros(500 * k), 1500);
        }
        assert!(e.rate().is_some());
        e.reset();
        assert_eq!(e.rate(), None, "cold: no estimate");
        assert_eq!(e.attainable_rate(), None, "peak history gone too");
        // A fresh window at a different rate re-learns cleanly.
        for k in 0..30u64 {
            e.on_txed(Instant::from_millis(100) + Duration::from_micros(1000 * k), 750);
        }
        let r = e.rate().unwrap();
        assert!((r - 0.75e6).abs() < 0.15e6, "re-learned {r}");
    }

    #[test]
    fn old_samples_age_out() {
        let mut e = est();
        e.on_txed(Instant::from_micros(0), 1_000_000);
        // Much later, a slow trickle: the big old burst must be gone.
        for k in 0..10u64 {
            e.on_txed(Instant::from_millis(100) + Duration::from_micros(500 * k), 100);
        }
        let r = e.rate().unwrap();
        assert!(r < 1e6, "old burst leaked into the window: {r}");
    }
}

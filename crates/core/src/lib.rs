//! The L4Span layer: the paper's primary contribution.
//!
//! L4Span lives in the CU-UP, above SDAP/PDCP, and ties the 5G RAN's
//! hidden RLC queues into end-to-end L4S congestion signaling (paper §4).
//! The layer reacts to three events, mirroring the Appendix A pseudocode:
//!
//! 1. **Downlink datagram** ([`L4SpanLayer::on_dl_packet`]) — classify
//!    the flow by ECN codepoint, map its five-tuple to (UE, DRB), record
//!    it in the packet profile table, and (for UDP, or when
//!    short-circuiting is off) mark its IP header per the current DRB
//!    marking state;
//! 2. **RAN feedback** ([`L4SpanLayer::on_ran_feedback`]) — fold the
//!    F1-U *downlink data delivery status* into the profile table, update
//!    the egress-rate estimate (Eq. 3–4), predict the standing queue's
//!    sojourn time (Eq. 5), and refresh the marking probabilities
//!    (Eq. 1 for L4S, Eq. 2 for classic, the coupled rule for shared
//!    DRBs);
//! 3. **Uplink ACK** ([`L4SpanLayer::on_ul_packet`]) — reverse-map the
//!    ACK to its DRB and, when short-circuiting is enabled, rewrite the
//!    classic-ECN echo or the AccECN counters in place (then fix the TCP
//!    checksum), so congestion news skips the RAN's downlink jitter
//!    (§4.4).
//!
//! Submodules: [`profile`] (packet profile table), [`estimator`]
//! (egress-rate and error estimation), [`marking`] (the three
//! strategies), [`flow`] (five-tuple ↔ DRB mapping and per-flow feedback
//! state), [`config`], and [`gauss`] (the Φ used by Eq. 1).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod estimator;
pub mod flow;
pub mod gauss;
pub mod layer;
pub mod marking;
pub mod profile;

pub use config::{HandoverPolicy, L4SpanConfig, SharedDrbStrategy};
pub use layer::{DlVerdict, L4SpanLayer, MarkerDrbState, MarkerFlowState};

//! The standard normal CDF Φ, used by the Eq. 1 marking rule.
//!
//! Computed from the Abramowitz & Stegun 7.1.26 rational approximation of
//! erf (|error| < 1.5·10⁻⁷), which is far below the granularity that a
//! Bernoulli marking draw can resolve.

/// Error function approximation (A&S 7.1.26).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    const A1: f64 = 0.254829592;
    const A2: f64 = -0.284496736;
    const A3: f64 = 1.421413741;
    const A4: f64 = -1.453152027;
    const A5: f64 = 1.061405429;
    const P: f64 = 0.3275911;
    let t = 1.0 / (1.0 + P * x);
    let y = 1.0 - (((((A5 * t + A4) * t) + A3) * t + A2) * t + A1) * t * (-x * x).exp();
    sign * y
}

/// Standard normal CDF: Φ(x) = (1 + erf(x/√2)) / 2.
pub fn phi(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / core::f64::consts::SQRT_2))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_known_values() {
        assert!((erf(0.0)).abs() < 1e-8);
        assert!((erf(1.0) - 0.8427007929).abs() < 1e-6);
        assert!((erf(-1.0) + 0.8427007929).abs() < 1e-6);
        assert!((erf(3.0) - 0.9999779095).abs() < 1e-6);
    }

    #[test]
    fn phi_known_values() {
        assert!((phi(0.0) - 0.5).abs() < 1e-9);
        assert!((phi(1.0) - 0.8413447461).abs() < 1e-6);
        assert!((phi(-1.0) - 0.1586552539).abs() < 1e-6);
        assert!((phi(1.96) - 0.975).abs() < 1e-3);
        assert!(phi(8.0) > 0.999_999);
        assert!(phi(-8.0) < 1e-6);
    }

    #[test]
    fn phi_is_monotone() {
        let mut last = 0.0;
        for i in -400..=400 {
            let v = phi(i as f64 / 100.0);
            assert!(v >= last);
            last = v;
        }
    }
}

//! L4Span configuration knobs, with the paper's defaults.

use l4span_sim::Duration;

/// Marking policy when L4S and classic flows share one DRB (§4.2.3 and
/// the four bars of Fig. 16).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SharedDrbStrategy {
    /// Keep each class's own formula as if the queue were not shared
    /// ("Original" in Fig. 16 — the L4S flow starves).
    Original,
    /// Mark every flow with the L4S strategy (Eq. 1) — the classic flow
    /// starves.
    AllL4s,
    /// Mark every flow with the classic strategy (Eq. 2) — large
    /// throughput variation.
    AllClassic,
    /// The paper's coupling: classic keeps Eq. 2, the L4S flow gets
    /// `p_L4S = (2/K)·√p_classic` so the two model throughputs equalise.
    Coupled,
}

/// What the CU marker does with a DRB's estimation state when its UE
/// hands over to a different cell (paper §7: "upon handover, the
/// buffered bytes are sent to a new RAN, and the markings are already
/// done based on the old estimates"). Scenarios A/B the two.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HandoverPolicy {
    /// Keep the egress-rate estimator (and its attainable-rate peak
    /// history): the first post-handover marks are driven by the *old*
    /// cell's estimates until a fresh window of target-cell feedback
    /// overwrites them — the paper's default stance.
    #[default]
    MigrateState,
    /// Reset the estimator: the marker goes silent on the DRB until a
    /// full estimation window of target-cell feedback accumulates, then
    /// resumes with estimates that were never contaminated by the old
    /// cell. Trades a post-handover marking gap for never marking
    /// against a stale rate.
    ColdStart,
}

/// Static configuration of one L4Span instance.
#[derive(Debug, Clone)]
pub struct L4SpanConfig {
    /// Sojourn-time threshold τ_s for L4S marking; 10 ms (§6.3.2 sweeps
    /// this in Fig. 19 and finds the knee at 10 ms).
    pub tau_s: Duration,
    /// Estimation window: half the pre-set channel coherence time
    /// (24.9 ms measured at 3.5 GHz / 70 km/h, [78] in the paper).
    pub estimation_window: Duration,
    /// Rewrite uplink TCP ACKs at the CU instead of marking downlink IP
    /// headers (§4.4). Disabled automatically for UDP flows.
    pub short_circuit: bool,
    /// Drop (instead of mark) packets of Not-ECT flows to give loss-based
    /// senders feedback (§4.4 "fallback").
    pub drop_non_ecn: bool,
    /// Policy for DRBs carrying both flow classes.
    pub shared_strategy: SharedDrbStrategy,
    /// Multiplicative-decrease factor β assumed for classic senders in
    /// Eq. 2's K constant (0.5 for Reno; CUBIC's 0.7 yields a similar K).
    pub classic_beta: f64,
    /// Fallback MSS (bytes) when a flow's SYN didn't carry the option.
    pub default_mss: usize,
}

impl Default for L4SpanConfig {
    fn default() -> Self {
        L4SpanConfig {
            tau_s: Duration::from_millis(10),
            estimation_window: Duration::from_micros(24_900 / 2),
            short_circuit: true,
            drop_non_ecn: false,
            shared_strategy: SharedDrbStrategy::Coupled,
            classic_beta: 0.5,
            default_mss: 1400,
        }
    }
}

impl L4SpanConfig {
    /// The K constant of the Padhye throughput model used by Eq. 2:
    /// `K = (1+β)/2 · √(2/(1−β²))`.
    pub fn k_classic(&self) -> f64 {
        let b = self.classic_beta;
        (1.0 + b) / 2.0 * (2.0 / (1.0 - b * b)).sqrt()
    }

    /// The same marking policy adapted for a **UE-side uplink** instance.
    /// Uplink L4Span sits at the UE's per-DRB transmit queue, where the
    /// standing queue is governed by SR/BSR latency and scheduler grants
    /// rather than downlink slot telemetry. ACK short-circuiting is
    /// disabled: its whole purpose is bypassing the jittery TDD *uplink*
    /// for feedback, but an uplink flow's feedback already rides the
    /// fast downlink — so marks go on the IP header directly and reach
    /// the server-side receiver unmodified.
    pub fn for_uplink(&self) -> L4SpanConfig {
        L4SpanConfig {
            short_circuit: false,
            ..self.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = L4SpanConfig::default();
        assert_eq!(c.tau_s, Duration::from_millis(10));
        // τ_c/2 = 12.45 ms.
        assert_eq!(c.estimation_window, Duration::from_micros(12_450));
        assert!(c.short_circuit);
        assert_eq!(c.shared_strategy, SharedDrbStrategy::Coupled);
    }

    #[test]
    fn k_for_reno_beta_is_sqrt_three_halves() {
        let c = L4SpanConfig::default();
        assert!((c.k_classic() - (1.5f64).sqrt()).abs() < 1e-12);
    }
}

//! The three marking strategies of paper §4.2.
//!
//! * **Eq. 1 (L4S-only DRB):** mark with the probability that the true
//!   egress rate leaves the standing queue's sojourn time above τ_s,
//!   under a Gaussian error model around the estimate:
//!   `p_L4S = Φ((N_queue/τ_s − r̂_e) / ê_re)`. When the rate is volatile
//!   (large ê) the edge flattens to avoid under-utilisation; when stable
//!   it sharpens toward DualPi2's step.
//! * **Eq. 2 (classic-only DRB):** match the Padhye model's throughput to
//!   the RAN egress rate: `p_classic = (MSS·K / (R̂TT·r̂_e))²`, with
//!   `R̂TT = R̂TT* + τ̂_s` (or `2·τ̂_s` when no handshake RTT exists).
//! * **Coupled (shared DRB, §4.2.3):** classic keeps Eq. 2; the L4S flow
//!   gets `p_L4S = (2/K)·√p_classic`, the solution of
//!   `2·MSS/(RTT·p_L4S) = MSS·K/(RTT·√p_classic)`.

use l4span_sim::Duration;

use crate::gauss::phi;

/// Eq. 1: L4S marking probability.
///
/// * `n_queue` — standing queue bytes (Eq. 5 numerator);
/// * `tau_s` — sojourn threshold (10 ms default);
/// * `rate` — smoothed egress estimate r̂_e in bytes/sec;
/// * `rate_std` — ê_re, the estimate's error spread.
///
/// With `rate_std = 0` this degenerates to DualPi2's deterministic step
/// at τ_s, exactly as §4.2.1 notes.
pub fn p_l4s(n_queue: usize, tau_s: Duration, rate: f64, rate_std: f64) -> f64 {
    if rate <= 0.0 {
        // No drainage at all: the queue can only violate the threshold.
        return if n_queue > 0 { 1.0 } else { 0.0 };
    }
    let needed = n_queue as f64 / tau_s.as_secs_f64(); // rate to meet τ_s
    // Cap the relative spread at ê/r̂ = 0.5 (the largest the paper's
    // Fig. 4 inset shows): an unbounded ê would put Φ(−r̂/ê) ≈ 0.16+ of
    // marking probability on an *empty* queue, throttling senders on a
    // merely-volatile (not congested) channel.
    let rate_std = rate_std.min(0.5 * rate);
    if rate_std <= f64::EPSILON {
        return if rate < needed { 1.0 } else { 0.0 };
    }
    phi((needed - rate) / rate_std)
}

/// Eq. 2: classic marking probability.
///
/// * `mss` — the flow's segment size in bytes;
/// * `k` — the Padhye constant `K = (1+β)/2·√(2/(1−β²))`;
/// * `rtt` — the estimated round-trip `R̂TT* + τ̂_s`;
/// * `rate` — the egress rate share this flow should converge to.
pub fn p_classic(mss: usize, k: f64, rtt: Duration, rate: f64) -> f64 {
    if rate <= 0.0 {
        return 1.0;
    }
    let rtt_s = rtt.as_secs_f64().max(1e-4);
    let x = mss as f64 * k / (rtt_s * rate);
    (x * x).clamp(0.0, 1.0)
}

/// Shared-DRB coupling: `p_L4S = (2/K)·√p_classic`, capped at 1.
pub fn p_l4s_coupled(p_classic: f64, k: f64) -> f64 {
    ((2.0 / k) * p_classic.max(0.0).sqrt()).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: f64 = 1e6;

    #[test]
    fn eq1_half_probability_at_threshold() {
        // Estimated sojourn exactly τ_s: N/τ == r̂ ⇒ Φ(0) = 0.5.
        let tau = Duration::from_millis(10);
        let rate = 3.0 * MB;
        let n = (rate * 0.010) as usize;
        let p = p_l4s(n, tau, rate, 0.3 * MB);
        assert!((p - 0.5).abs() < 0.01, "p {p}");
    }

    #[test]
    fn eq1_rises_with_queue() {
        let tau = Duration::from_millis(10);
        let rate = 3.0 * MB;
        let std = 0.3 * MB;
        let p_small = p_l4s(1_000, tau, rate, std);
        let p_half = p_l4s(15_000, tau, rate, std);
        let p_big = p_l4s(60_000, tau, rate, std);
        assert!(p_small < 0.05, "{p_small}");
        assert!(p_half < 0.5);
        assert!(p_big > 0.95, "{p_big}");
    }

    #[test]
    fn eq1_volatility_flattens_the_edge() {
        // Fig. 4 inset: larger ê ⇒ flatter curve around τ_s.
        let tau = Duration::from_millis(10);
        let rate = 3.0 * MB;
        // 12 ms estimated sojourn (slightly over threshold).
        let n = (rate * 0.012) as usize;
        let sharp = p_l4s(n, tau, rate, 0.05 * MB);
        let flat = p_l4s(n, tau, rate, 1.0 * MB);
        assert!(sharp > 0.99, "sharp edge marks almost surely: {sharp}");
        assert!(flat < 0.8, "volatile estimate hedges: {flat}");
        assert!(flat > 0.5, "but still leans toward marking: {flat}");
    }

    #[test]
    fn eq1_zero_std_is_dualpi2_step() {
        let tau = Duration::from_millis(10);
        let rate = 3.0 * MB;
        assert_eq!(p_l4s((rate * 0.009) as usize, tau, rate, 0.0), 0.0);
        assert_eq!(p_l4s((rate * 0.011) as usize, tau, rate, 0.0), 1.0);
    }

    #[test]
    fn eq1_zero_rate_marks_everything_queued() {
        assert_eq!(p_l4s(1, Duration::from_millis(10), 0.0, 0.0), 1.0);
        assert_eq!(p_l4s(0, Duration::from_millis(10), 0.0, 0.0), 0.0);
    }

    #[test]
    fn eq2_matches_model_throughput() {
        // If we mark with p_classic, the Padhye model says the sender
        // converges to rate = MSS·K/(RTT·√p): plug p back in and check.
        let mss = 1400;
        let k = (1.5f64).sqrt();
        let rtt = Duration::from_millis(50);
        let rate = 2.5 * MB;
        let p = p_classic(mss, k, rtt, rate);
        let model_rate = mss as f64 * k / (rtt.as_secs_f64() * p.sqrt());
        assert!((model_rate - rate).abs() / rate < 1e-9);
    }

    #[test]
    fn eq2_faster_rate_needs_fewer_marks() {
        let mss = 1400;
        let k = (1.5f64).sqrt();
        let rtt = Duration::from_millis(50);
        let slow = p_classic(mss, k, rtt, 0.5 * MB);
        let fast = p_classic(mss, k, rtt, 5.0 * MB);
        assert!(fast < slow);
    }

    #[test]
    fn eq2_longer_rtt_needs_fewer_marks() {
        // Longer RTT already slows the sender; fewer marks needed.
        let mss = 1400;
        let k = (1.5f64).sqrt();
        let near = p_classic(mss, k, Duration::from_millis(38), 2.0 * MB);
        let far = p_classic(mss, k, Duration::from_millis(106), 2.0 * MB);
        assert!(far < near);
    }

    #[test]
    fn eq2_clamps_to_one() {
        assert_eq!(
            p_classic(1400, 1.22, Duration::from_millis(1), 1_000.0),
            1.0
        );
        assert_eq!(p_classic(1400, 1.22, Duration::from_millis(50), 0.0), 1.0);
    }

    #[test]
    fn coupling_equalises_model_throughputs() {
        // r_L4S = 2·MSS/(RTT·p_L4S) must equal r_classic =
        // MSS·K/(RTT·√p_classic) when p_L4S = (2/K)·√p_classic.
        let k = (1.5f64).sqrt();
        let pc: f64 = 0.04;
        let pl = p_l4s_coupled(pc, k);
        let mss = 1400.0;
        let rtt = 0.05;
        let r_l4s = 2.0 * mss / (rtt * pl);
        let r_classic = mss * k / (rtt * pc.sqrt());
        assert!((r_l4s - r_classic).abs() / r_classic < 1e-9);
    }

    #[test]
    fn coupling_caps_at_one() {
        assert_eq!(p_l4s_coupled(1.0, 0.5), 1.0);
        assert_eq!(p_l4s_coupled(0.0, 1.22), 0.0);
    }
}

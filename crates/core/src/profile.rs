//! The packet profile table (paper §4.3.2, Fig. 5).
//!
//! One table per DRB tracks each PDCP SDU's ingress, transmitted, and
//! delivered timestamps. L4Span populates the ingress column itself (it
//! sits on the downlink datapath and sees every SDU in PDCP-SN order) and
//! fills the other columns from the cumulative F1-U counters, using only
//! the two mandatory fields so RLC UM works identically (§4.3.1).

use std::collections::VecDeque;

use l4span_sim::Instant;

/// One SDU's row in the profile table.
#[derive(Debug, Clone, Copy)]
pub struct PacketRecord {
    /// PDCP sequence number.
    pub sn: u64,
    /// Wire size in bytes.
    pub size: usize,
    /// CU ingress timestamp (T_I).
    pub t_ingress: Instant,
}

/// A newly-transmitted SDU, as extracted from an F1-U report.
#[derive(Debug, Clone, Copy)]
pub struct TxedPacket {
    /// PDCP sequence number.
    pub sn: u64,
    /// Wire size in bytes.
    pub size: usize,
    /// CU ingress timestamp.
    pub t_ingress: Instant,
    /// Transmit timestamp (T_T) from the feedback message.
    pub t_txed: Instant,
}

/// Per-DRB packet profile table.
///
/// Rows live in a `VecDeque` ordered by SN: ingress order *is* SN order
/// (PDCP assigns densely), so the standing queue is always a contiguous
/// suffix and feedback consumes a contiguous prefix — both O(1) amortised.
#[derive(Debug, Default)]
pub struct ProfileTable {
    /// Rows for SDUs not yet reported transmitted.
    pending: VecDeque<PacketRecord>,
    /// Next SN this table will assign at ingress (mirrors PDCP).
    next_sn: u64,
    /// Highest SN reported transmitted, if any.
    highest_txed: Option<u64>,
    /// Highest SN reported delivered, if any.
    highest_delivered: Option<u64>,
    /// Bytes in the standing queue (ingressed, not yet transmitted).
    queued_bytes: usize,
    /// Total SDUs ever recorded (diagnostics / memory accounting).
    total_seen: u64,
}

impl ProfileTable {
    /// Empty table.
    pub fn new() -> ProfileTable {
        ProfileTable::default()
    }

    /// Record a downlink SDU at CU ingress; returns the SN it mirrors.
    pub fn on_ingress(&mut self, size: usize, now: Instant) -> u64 {
        let sn = self.next_sn;
        self.next_sn += 1;
        self.total_seen += 1;
        self.queued_bytes += size;
        self.pending.push_back(PacketRecord {
            sn,
            size,
            t_ingress: now,
        });
        sn
    }

    /// Fold in an F1-U report: all SNs up to `highest_txed_sn` are now
    /// transmitted (at `t` — slot granularity, exactly what the DU knows).
    /// Returns the rows that newly became transmitted, oldest first.
    pub fn on_feedback(
        &mut self,
        highest_txed_sn: Option<u64>,
        highest_delivered_sn: Option<u64>,
        t: Instant,
    ) -> Vec<TxedPacket> {
        if let Some(d) = highest_delivered_sn {
            self.highest_delivered =
                Some(self.highest_delivered.map_or(d, |h| h.max(d)));
        }
        let Some(high) = highest_txed_sn else {
            return Vec::new();
        };
        let mut out = Vec::new();
        while let Some(front) = self.pending.front() {
            if front.sn > high {
                break;
            }
            let r = self.pending.pop_front().expect("front exists");
            self.queued_bytes -= r.size;
            out.push(TxedPacket {
                sn: r.sn,
                size: r.size,
                t_ingress: r.t_ingress,
                t_txed: t,
            });
        }
        if !out.is_empty() || self.highest_txed.is_some_and(|h| high > h) {
            self.highest_txed = Some(self.highest_txed.map_or(high, |h| h.max(high)));
        }
        out
    }

    /// Bytes sitting in the RAN queue (N_queue of Eq. 5): ingressed SDUs
    /// not yet reported transmitted.
    pub fn queued_bytes(&self) -> usize {
        self.queued_bytes
    }

    /// Ingress time of the oldest SDU still queued — the "head age"
    /// sojourn estimate that the DualPi2-at-CU and TC-RAN baselines use
    /// in place of Eq. 5 (§6.3.1, §6.2.2).
    pub fn head_ingress(&self) -> Option<Instant> {
        self.pending.front().map(|r| r.t_ingress)
    }

    /// Standing queue length in SDUs.
    pub fn queued_sdus(&self) -> usize {
        self.pending.len()
    }

    /// Next SN to be assigned (diagnostic: must track PDCP exactly).
    pub fn next_sn(&self) -> u64 {
        self.next_sn
    }

    /// Highest transmitted SN seen in feedback.
    pub fn highest_txed(&self) -> Option<u64> {
        self.highest_txed
    }

    /// Highest delivered SN seen in feedback (AM only).
    pub fn highest_delivered(&self) -> Option<u64> {
        self.highest_delivered
    }

    /// Total SDUs ever recorded.
    pub fn total_seen(&self) -> u64 {
        self.total_seen
    }

    /// Resident memory estimate in bytes (Table 1 accounting).
    pub fn memory_bytes(&self) -> usize {
        self.pending.capacity() * core::mem::size_of::<PacketRecord>()
            + core::mem::size_of::<Self>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ingress_assigns_dense_sns_and_counts_queue() {
        let mut t = ProfileTable::new();
        assert_eq!(t.on_ingress(1500, Instant::from_millis(1)), 0);
        assert_eq!(t.on_ingress(500, Instant::from_millis(2)), 1);
        assert_eq!(t.queued_bytes(), 2000);
        assert_eq!(t.queued_sdus(), 2);
        assert_eq!(t.next_sn(), 2);
    }

    #[test]
    fn feedback_consumes_prefix() {
        let mut t = ProfileTable::new();
        for i in 0..5 {
            t.on_ingress(1000, Instant::from_millis(i));
        }
        let txed = t.on_feedback(Some(2), None, Instant::from_millis(10));
        assert_eq!(txed.len(), 3);
        assert_eq!(txed[0].sn, 0);
        assert_eq!(txed[2].sn, 2);
        assert!(txed.iter().all(|p| p.t_txed == Instant::from_millis(10)));
        assert_eq!(t.queued_bytes(), 2000);
        assert_eq!(t.highest_txed(), Some(2));
        // Re-reporting the same high SN yields nothing new.
        assert!(t.on_feedback(Some(2), None, Instant::from_millis(11)).is_empty());
    }

    #[test]
    fn delivered_tracks_independently() {
        let mut t = ProfileTable::new();
        t.on_ingress(1000, Instant::ZERO);
        t.on_feedback(Some(0), None, Instant::from_millis(1));
        assert_eq!(t.highest_delivered(), None);
        t.on_feedback(Some(0), Some(0), Instant::from_millis(20));
        assert_eq!(t.highest_delivered(), Some(0));
    }

    #[test]
    fn ingress_timestamps_survive_to_feedback() {
        let mut t = ProfileTable::new();
        t.on_ingress(700, Instant::from_millis(3));
        let txed = t.on_feedback(Some(0), None, Instant::from_millis(9));
        assert_eq!(txed[0].t_ingress, Instant::from_millis(3));
        assert_eq!(txed[0].size, 700);
    }

    #[test]
    fn feedback_beyond_ingress_is_tolerated() {
        // A stale/duplicated report must not panic or corrupt counts.
        let mut t = ProfileTable::new();
        t.on_ingress(100, Instant::ZERO);
        let txed = t.on_feedback(Some(10), None, Instant::from_millis(1));
        assert_eq!(txed.len(), 1);
        assert_eq!(t.queued_bytes(), 0);
    }

    #[test]
    fn memory_stays_bounded_by_queue() {
        let mut t = ProfileTable::new();
        for i in 0..10_000u64 {
            t.on_ingress(1000, Instant::from_millis(i));
            t.on_feedback(Some(i), None, Instant::from_millis(i));
        }
        assert_eq!(t.queued_sdus(), 0);
        assert_eq!(t.total_seen(), 10_000);
        // The deque never held more than a handful of rows.
        assert!(t.memory_bytes() < 64 * 1024, "{}", t.memory_bytes());
    }
}

//! The L4Span layer itself: the three event handlers of Appendix A.

use l4span_net::ecn::FlowClass;
use l4span_net::{Ecn, PacketBuf, Protocol, TcpFlags};
use l4span_ran::f1u::DlDataDeliveryStatus;
use l4span_ran::{DrbId, UeId};
use l4span_sim::{Duration, FxHashMap, Instant, SimRng};

use crate::config::{HandoverPolicy, L4SpanConfig, SharedDrbStrategy};
use crate::estimator::EgressEstimator;
use crate::flow::{FlowState, FlowTable};
use l4span_net::FiveTuple;
use crate::marking;
use crate::profile::ProfileTable;

/// What to do with a downlink packet after L4Span processed it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DlVerdict {
    /// Hand the packet to SDAP (possibly with a rewritten ECN field).
    Forward,
    /// Drop it (non-ECN fallback feedback, §4.4).
    Drop,
}

/// Event counters (Fig. 21 / Table 1 accounting).
#[derive(Debug, Default, Clone, Copy)]
pub struct LayerStats {
    /// Downlink datagrams processed.
    pub dl_packets: u64,
    /// Uplink ACKs inspected.
    pub ul_acks: u64,
    /// Uplink ACKs rewritten by short-circuiting.
    pub ul_rewritten: u64,
    /// RAN feedback messages processed.
    pub feedback_msgs: u64,
    /// CE marks applied to downlink IP headers.
    pub dl_marks: u64,
    /// Tentative (bookkept) marks for short-circuited flows.
    pub tentative_marks: u64,
    /// Packets dropped for non-ECN feedback.
    pub drops: u64,
}

/// Per-DRB estimation and marking state.
#[derive(Debug)]
struct DrbState {
    profile: ProfileTable,
    est: EgressEstimator,
}

impl DrbState {
    fn new(window: Duration) -> DrbState {
        DrbState {
            profile: ProfileTable::new(),
            est: EgressEstimator::new(window),
        }
    }
}

/// A DRB's marker state lifted out of one L4Span instance, opaque to the
/// caller: the packet profile table (SN bookkeeping that must stay in
/// lockstep with PDCP) plus the egress-rate estimator. Produced by
/// [`L4SpanLayer::extract_drb_state`], consumed by
/// [`L4SpanLayer::reseed_drb_state`] — the carrier for marker-state
/// migration when a CU-UP instance follows a UE across cells.
#[derive(Debug)]
pub struct MarkerDrbState(DrbState);

/// A flow's per-tuple state (short-circuit ledger, ECE latch, RTT*)
/// lifted out of one instance's [`FlowTable`], opaque to the caller.
/// The uplink short-circuit path rewrites ACKs from this state, so when
/// a CU-UP instance follows a UE across cells the tuple entries must
/// migrate with the DRB state — rebuilding them fresh would desync the
/// AccECN ledger from what the client has already been told.
#[derive(Debug)]
pub struct MarkerFlowState(FlowState);

/// The L4Span CU-UP module. One instance serves a whole cell (it holds
/// per-UE, per-DRB state internally, like the per-UE entities of §5).
pub struct L4SpanLayer {
    cfg: L4SpanConfig,
    rng: SimRng,
    drbs: FxHashMap<(UeId, DrbId), DrbState>,
    flows: FlowTable,
    stats: LayerStats,
}

impl L4SpanLayer {
    /// Create a layer with the given configuration.
    pub fn new(cfg: L4SpanConfig, rng: SimRng) -> L4SpanLayer {
        L4SpanLayer {
            cfg,
            rng,
            drbs: FxHashMap::default(),
            flows: FlowTable::new(),
            stats: LayerStats::default(),
        }
    }

    /// Configuration in use.
    pub fn config(&self) -> &L4SpanConfig {
        &self.cfg
    }

    /// Cumulative event counters.
    pub fn stats(&self) -> LayerStats {
        self.stats
    }

    /// Number of tracked flows.
    pub fn flow_count(&self) -> usize {
        self.flows.len()
    }

    fn drb_state(&mut self, ue: UeId, drb: DrbId) -> &mut DrbState {
        let window = self.cfg.estimation_window;
        self.drbs
            .entry((ue, drb))
            .or_insert_with(|| DrbState::new(window))
    }

    /// Smoothed egress-rate estimate for a DRB in bytes/sec (Eq. 4).
    pub fn egress_rate(&self, ue: UeId, drb: DrbId) -> Option<f64> {
        self.drbs.get(&(ue, drb)).and_then(|d| d.est.rate())
    }

    /// Predicted sojourn time of the DRB's standing queue (Eq. 5).
    pub fn predicted_sojourn(&self, ue: UeId, drb: DrbId) -> Option<Duration> {
        let d = self.drbs.get(&(ue, drb))?;
        d.est.predict_sojourn(d.profile.queued_bytes())
    }

    /// Standing-queue bytes L4Span believes are in the RAN.
    pub fn queued_bytes(&self, ue: UeId, drb: DrbId) -> usize {
        self.drbs
            .get(&(ue, drb))
            .map(|d| d.profile.queued_bytes())
            .unwrap_or(0)
    }

    /// The current Eq. 1 marking probability for a DRB (diagnostics and
    /// the Fig. 4 walkthrough).
    pub fn current_p_l4s(&self, ue: UeId, drb: DrbId) -> f64 {
        let Some(d) = self.drbs.get(&(ue, drb)) else {
            return 0.0;
        };
        let Some(rate) = d.est.rate() else {
            return 0.0;
        };
        marking::p_l4s(
            d.profile.queued_bytes(),
            self.cfg.tau_s,
            rate,
            d.est.rate_std(),
        )
    }

    /// Resident memory of all tables (Table 1 accounting).
    pub fn memory_bytes(&self) -> usize {
        self.drbs
            .values()
            .map(|d| d.profile.memory_bytes() + d.est.memory_bytes())
            .sum::<usize>()
            + core::mem::size_of::<Self>()
    }

    /// Lift a DRB's marker state out of this instance (for migration to
    /// another L4Span instance, or inspection). Returns `None` when the
    /// DRB was never seen.
    pub fn extract_drb_state(&mut self, ue: UeId, drb: DrbId) -> Option<MarkerDrbState> {
        self.drbs.remove(&(ue, drb)).map(MarkerDrbState)
    }

    /// Install a previously-extracted DRB state (replacing any state this
    /// instance already holds for the pair). The profile table inside
    /// carries the PDCP SN mirror, so reseeding is the only correct way
    /// to move a DRB between instances — building fresh state would
    /// desynchronise the SN bookkeeping from the in-flight F1-U counters.
    pub fn reseed_drb_state(&mut self, ue: UeId, drb: DrbId, state: MarkerDrbState) {
        self.drbs.insert((ue, drb), state.0);
    }

    /// Lift a tracked flow's per-tuple state out of this instance (for
    /// migration alongside [`L4SpanLayer::extract_drb_state`]). Returns
    /// `None` when the tuple was never observed.
    pub fn extract_flow_state(&mut self, tuple: &FiveTuple) -> Option<MarkerFlowState> {
        self.flows.extract(tuple).map(MarkerFlowState)
    }

    /// Install a previously-extracted flow entry (class counters are
    /// restored with it).
    pub fn reseed_flow_state(&mut self, tuple: FiveTuple, state: MarkerFlowState) {
        self.flows.absorb(tuple, state.0);
    }

    /// The UE carrying `drb` handed over to a different cell. Under
    /// [`HandoverPolicy::MigrateState`] the estimator survives (first
    /// post-handover marks ride the old cell's estimates, §7); under
    /// [`HandoverPolicy::ColdStart`] it is reset and must re-learn from
    /// target-cell feedback. The profile table always survives: its SN
    /// mirror must stay in lockstep with PDCP, whose numbering is
    /// continuous across re-establishment — and the forwarded-but-
    /// unconfirmed SDUs it tracks as queued really are queued again at
    /// the target.
    pub fn on_handover(&mut self, ue: UeId, drb: DrbId, policy: HandoverPolicy) {
        if policy == HandoverPolicy::ColdStart {
            if let Some(d) = self.drbs.get_mut(&(ue, drb)) {
                d.est.reset();
            }
        }
    }

    /// **Event 1** (Fig. 22): a downlink datagram arrived from the core.
    /// The caller resolved SDAP's QFI→DRB mapping (L4Span mirrors it).
    pub fn on_dl_packet(
        &mut self,
        ue: UeId,
        drb: DrbId,
        pkt: &mut PacketBuf,
        now: Instant,
    ) -> DlVerdict {
        self.stats.dl_packets += 1;
        let Some(tuple) = pkt.five_tuple() else {
            return DlVerdict::Forward; // unparseable: pass through
        };
        let class = FlowClass::from_ecn(pkt.ecn());
        let default_mss = self.cfg.default_mss;

        // --- flow bookkeeping -------------------------------------------------
        let is_tcp = tuple.protocol == Protocol::Tcp;
        let tcp_hdr = if is_tcp { pkt.tcp_header() } else { None };
        {
            // One table probe: lookup-or-create plus the one-time
            // NonECN→ECT class upgrade (with count bookkeeping).
            let flow = self.flows.observe(tuple, ue, drb, class, default_mss);
            if let Some(h) = &tcp_hdr {
                flow.observe_forward(now);
                if h.accecn.is_some() {
                    flow.uses_accecn = true;
                }
                if let Some(mss) = h.mss {
                    flow.mss = mss as usize;
                }
                // The sender's CWR ends a classic ECE episode (§4.4).
                if h.flags.contains(TcpFlags::CWR) {
                    flow.ece_on = false;
                }
            }
        }

        // --- profile table ingress -------------------------------------------
        let wire_len = pkt.wire_len();
        let payload_len = pkt.payload_len();
        self.drb_state(ue, drb).profile.on_ingress(wire_len, now);

        // --- marking decision --------------------------------------------------
        // Handshake/control packets (no payload) are never marked.
        if payload_len == 0 {
            return DlVerdict::Forward;
        }
        let p = self.marking_probability(ue, drb, &tuple);
        let marked = self.rng.chance(p);
        let short_circuit = self.cfg.short_circuit && is_tcp;
        let flow = self.flows.get_mut(&tuple).expect("inserted above");
        match (flow.class, marked) {
            (FlowClass::NonEcn, true) if self.cfg.drop_non_ecn => {
                self.stats.drops += 1;
                return DlVerdict::Drop;
            }
            (FlowClass::NonEcn, _) => {}
            (_, true) if short_circuit => {
                // Tentative mark: bookkeeping only (§4.4).
                flow.marks += 1;
                flow.ce_packets = flow.ce_packets.wrapping_add(1);
                flow.ledger.ce_bytes =
                    (flow.ledger.ce_bytes + payload_len as u32) & 0x00FF_FFFF;
                flow.ece_on = true;
                self.stats.tentative_marks += 1;
            }
            (_, true) => {
                flow.marks += 1;
                let ce = pkt.ecn().remark_to(Ecn::Ce);
                pkt.set_ecn(ce);
                self.stats.dl_marks += 1;
            }
            (FlowClass::L4s, false) if short_circuit => {
                flow.ledger.ect1_bytes =
                    (flow.ledger.ect1_bytes + payload_len as u32) & 0x00FF_FFFF;
            }
            (FlowClass::Classic, false) if short_circuit => {
                flow.ledger.ect0_bytes =
                    (flow.ledger.ect0_bytes + payload_len as u32) & 0x00FF_FFFF;
            }
            _ => {}
        }
        DlVerdict::Forward
    }

    /// The marking probability currently applicable to `tuple` on its
    /// DRB, combining Eq. 1 / Eq. 2 / the shared-DRB strategy (§4.2).
    fn marking_probability(&mut self, ue: UeId, drb: DrbId, tuple: &l4span_net::FiveTuple) -> f64 {
        let Some(d) = self.drbs.get(&(ue, drb)) else {
            return 0.0;
        };
        let Some(rate) = d.est.attainable_rate() else {
            return 0.0; // no feedback yet: cannot judge congestion
        };
        let rate_std = d.est.rate_std();
        let n_queue = d.profile.queued_bytes();
        let sojourn = Duration::from_secs_f64(n_queue as f64 / rate.max(1.0));
        let (l4s_n, classic_n, _non) = self.flows.class_counts(ue, drb);
        let flow = self.flows.get(tuple).expect("flow exists");
        let k = self.cfg.k_classic();
        // Eq. 2 needs R̂TT = R̂TT* + τ̂_s (2·τ̂_s when no handshake RTT).
        // The sojourn term is capped at the target τ_s: d̂RTT describes
        // the *balanced-buffer* operating point. Feeding the full current
        // sojourn back into d̂RTT would make p collapse exactly when the
        // queue bloats (deep queue → huge RTT estimate → no marks), the
        // opposite of "prevent the well-documented buffer bloat". With
        // the cap, a queue above target sees a slightly over-strong p and
        // drains toward it; below target the gate stops marking — the
        // buffer "balances" as §4.2.2 intends.
        let sojourn_at_target = sojourn.min(self.cfg.tau_s);
        let rtt = match flow.rtt_star {
            Some(star) => star + sojourn_at_target,
            None => sojourn_at_target * 2,
        };
        let eq1 = || marking::p_l4s(n_queue, self.cfg.tau_s, rate, rate_std);
        // Eq. 2 signals only while a standing queue actually exceeds the
        // sojourn target: the classic strategy's goal is to *balance* the
        // buffer, not to empty it ("maintain a suitable amount of bytes
        // in the buffer to avoid underutilization", §4.2.2). Marking an
        // uncongested DRB would chase the sender's own rate downward.
        //
        // Above the target, the base probability is scaled by (τ̂/τ_s)²:
        // the Padhye-matched p alone is an *equilibrium* rate and cannot
        // drain a slow-start backlog within a useful time; Fig. 4 (right)
        // shows exactly this "dequeue rate drops → higher marking
        // probability → RAN can drain the queue" feedback.
        let tau_s = self.cfg.tau_s;
        let eq2 = || {
            if sojourn < tau_s {
                0.0
            } else {
                let base = marking::p_classic(flow.mss, k, rtt, rate);
                let over = sojourn.as_secs_f64() / tau_s.as_secs_f64();
                (base * over * over).clamp(0.0, 1.0)
            }
        };
        let shared = l4s_n > 0 && classic_n > 0;
        match flow.class {
            FlowClass::L4s if !shared => eq1(),
            FlowClass::Classic if !shared => eq2(),
            FlowClass::NonEcn => {
                if self.cfg.drop_non_ecn {
                    eq2()
                } else {
                    0.0
                }
            }
            class => match self.cfg.shared_strategy {
                SharedDrbStrategy::Original => match class {
                    FlowClass::L4s => eq1(),
                    _ => eq2(),
                },
                SharedDrbStrategy::AllL4s => eq1(),
                SharedDrbStrategy::AllClassic => eq2(),
                SharedDrbStrategy::Coupled => match class {
                    FlowClass::Classic => eq2(),
                    _ => marking::p_l4s_coupled(eq2(), k),
                },
            },
        }
    }

    /// **Event 2** (Fig. 23 top): an F1-U delivery-status frame arrived.
    pub fn on_ran_feedback(&mut self, msg: &DlDataDeliveryStatus, _now: Instant) {
        self.stats.feedback_msgs += 1;
        let d = self.drb_state(msg.ue, msg.drb);
        let txed = d
            .profile
            .on_feedback(msg.highest_txed_sn, msg.highest_delivered_sn, msg.timestamp);
        for p in txed {
            d.est.on_txed(p.t_txed, p.size);
        }
    }

    /// **Event 3** (Fig. 23 bottom): an uplink packet passes the CU on
    /// its way to the core. TCP ACKs of short-circuited flows get their
    /// feedback fields rewritten in place (checksums fixed by
    /// `PacketBuf::update_tcp`).
    pub fn on_ul_packet(&mut self, pkt: &mut PacketBuf, _now: Instant) {
        if !pkt.is_tcp_ack() {
            return;
        }
        self.stats.ul_acks += 1;
        if !self.cfg.short_circuit {
            return;
        }
        let Some(tuple) = pkt.five_tuple() else {
            return;
        };
        let Some(flow) = self.flows.reverse_lookup_mut(&tuple) else {
            return;
        };
        match flow.class {
            FlowClass::L4s if flow.uses_accecn => {
                // Add the bookkeeping ledger ON TOP of the receiver's own
                // counters: the receiver still reports genuine CE marks
                // from upstream (wired) bottlenecks, and erasing them
                // would blind the sender whenever the bottleneck shifts
                // out of the RAN (Fig. 2's 10–20 s phase).
                let ledger = flow.ledger;
                let ce_pkts = flow.ce_packets;
                let mut rewritten = false;
                pkt.update_tcp(|h| {
                    if let Some(rx) = h.accecn {
                        h.accecn = Some(
                            l4span_net::AccEcnCounters {
                                ect0_bytes: rx.ect0_bytes + ledger.ect0_bytes,
                                ce_bytes: rx.ce_bytes + ledger.ce_bytes,
                                ect1_bytes: rx.ect1_bytes + ledger.ect1_bytes,
                            }
                            .wrapped(),
                        );
                        let ace = (u32::from(h.flags.ace()) + ce_pkts) & 0b111;
                        h.flags.set_ace(ace as u8);
                        rewritten = true;
                    }
                });
                if rewritten {
                    self.stats.ul_rewritten += 1;
                }
            }
            FlowClass::Classic
                // Set ECE while our episode is live; never clear the
                // receiver's own echo (it may reflect upstream marks).
                if flow.ece_on => {
                    let mut changed = false;
                    pkt.update_tcp(|h| {
                        if !h.flags.contains(TcpFlags::ECE) {
                            h.flags.set(TcpFlags::ECE);
                            changed = true;
                        }
                    });
                    if changed {
                        self.stats.ul_rewritten += 1;
                    }
                }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use l4span_net::{AccEcnCounters, TcpHeader};

    const UE: UeId = UeId(0);
    const DRB: DrbId = DrbId(0);

    fn layer() -> L4SpanLayer {
        L4SpanLayer::new(L4SpanConfig::default(), SimRng::new(42))
    }

    fn data_pkt(ecn: Ecn, src_port: u16, payload: usize) -> PacketBuf {
        let hdr = TcpHeader {
            src_port,
            dst_port: 50_000,
            seq: 0,
            ack: 1,
            flags: TcpFlags::new().with(TcpFlags::ACK),
            ..TcpHeader::default()
        };
        PacketBuf::tcp(10, 20, ecn, 0, &hdr, payload)
    }

    fn udp_pkt(ecn: Ecn, payload: usize) -> PacketBuf {
        PacketBuf::udp(10, 20, ecn, 0, 5004, 6000, payload)
    }

    fn feedback(high_txed: u64, t: Instant) -> DlDataDeliveryStatus {
        DlDataDeliveryStatus {
            ue: UE,
            drb: DRB,
            highest_txed_sn: Some(high_txed),
            highest_delivered_sn: None,
            timestamp: t,
            desired_buffer_size: 0,
        }
    }

    /// Feed `n` packets and feedback reporting steady drainage at
    /// `per_ms` packets per millisecond.
    fn warm_up(l: &mut L4SpanLayer, n: u64, gap_us: u64) {
        for i in 0..n {
            let mut p = data_pkt(Ecn::Ect1, 443, 1400);
            l.on_dl_packet(UE, DRB, &mut p, Instant::from_micros(i * gap_us));
            l.on_ran_feedback(&feedback(i, Instant::from_micros(i * gap_us + 100)), Instant::from_micros(i * gap_us + 100));
        }
    }

    /// Warm up a *slow* DRB: one small (700-byte wire) SDU every 15 ms,
    /// giving an egress estimate of ≈56 kB/s. A subsequent 700-byte SDU
    /// then predicts a sojourn above the 10 ms gate while
    /// `2·N_queue < MSS·K`, which drives Eq. 2 to exactly 1.0 — a
    /// deterministic classic mark for latch tests.
    fn slow_warm_up(l: &mut L4SpanLayer) -> Instant {
        for i in 0..20u64 {
            let mut p = data_pkt(Ecn::Ect1, 443, 660);
            let t = Instant::from_micros(i * 15_000);
            l.on_dl_packet(UE, DRB, &mut p, t);
            l.on_ran_feedback(&feedback(i, t + Duration::from_micros(100)), t);
        }
        Instant::from_micros(20 * 15_000)
    }

    #[test]
    fn no_marks_before_first_feedback() {
        let mut l = layer();
        for _ in 0..50 {
            let mut p = udp_pkt(Ecn::Ect1, 1200);
            assert_eq!(l.on_dl_packet(UE, DRB, &mut p, Instant::ZERO), DlVerdict::Forward);
            assert_eq!(p.ecn(), Ecn::Ect1, "cannot judge congestion yet");
        }
    }

    #[test]
    fn drained_queue_is_not_marked() {
        let mut l = layer();
        warm_up(&mut l, 200, 500);
        // Queue is empty (every SN txed): p ≈ 0.
        let mut marks = 0;
        for i in 0..100u64 {
            let mut p = udp_pkt(Ecn::Ect1, 1200);
            l.on_dl_packet(UE, DRB, &mut p, Instant::from_micros(100_000 + i));
            if p.ecn() == Ecn::Ce {
                marks += 1;
            }
            // Drain immediately.
            l.on_ran_feedback(
                &feedback(200 + i, Instant::from_micros(100_050 + i)),
                Instant::from_micros(100_050 + i),
            );
        }
        assert!(marks <= 2, "near-zero marking on an empty queue: {marks}");
    }

    #[test]
    fn deep_queue_marks_udp_l4s_packets_downlink() {
        let mut l = layer();
        warm_up(&mut l, 100, 500);
        // Now stall the RAN: ingress 300 more packets with no feedback:
        // predicted sojourn blows past τ_s = 10 ms.
        let t = Instant::from_millis(60);
        let mut marks = 0;
        for _ in 0..300 {
            let mut p = udp_pkt(Ecn::Ect1, 1200);
            l.on_dl_packet(UE, DRB, &mut p, t);
            if p.ecn() == Ecn::Ce {
                marks += 1;
            }
        }
        assert!(marks > 250, "deep queue must mark nearly all: {marks}");
    }

    #[test]
    fn tcp_l4s_marks_are_tentative_with_short_circuit() {
        let mut l = layer();
        warm_up(&mut l, 100, 500);
        let t = Instant::from_millis(60);
        for _ in 0..200 {
            let mut p = data_pkt(Ecn::Ect1, 443, 1400);
            l.on_dl_packet(UE, DRB, &mut p, t);
            assert_ne!(p.ecn(), Ecn::Ce, "downlink header untouched under SC");
        }
        assert!(l.stats().tentative_marks > 150);
        assert_eq!(l.stats().dl_marks, 0);
    }

    #[test]
    fn short_circuit_rewrites_accecn_ack() {
        let mut l = layer();
        // Handshake: SYN-ACK downlink with AccECN option → flow uses AccECN.
        let synack_hdr = TcpHeader {
            src_port: 443,
            dst_port: 50_000,
            flags: TcpFlags::new().with(TcpFlags::SYN).with(TcpFlags::ACK),
            accecn: Some(AccEcnCounters::default()),
            mss: Some(1400),
            ..TcpHeader::default()
        };
        let mut synack = PacketBuf::tcp(10, 20, Ecn::Ect1, 0, &synack_hdr, 0);
        l.on_dl_packet(UE, DRB, &mut synack, Instant::ZERO);
        warm_up(&mut l, 100, 500);
        // Build a deep queue and tentatively mark TCP packets.
        let t = Instant::from_millis(60);
        for _ in 0..100 {
            let mut p = data_pkt(Ecn::Ect1, 443, 1400);
            l.on_dl_packet(UE, DRB, &mut p, t);
        }
        assert!(l.stats().tentative_marks > 0);
        // Uplink ACK with zero counters gets the ledger substituted.
        let ack_hdr = TcpHeader {
            src_port: 50_000,
            dst_port: 443,
            ack: 1400,
            flags: TcpFlags::new().with(TcpFlags::ACK),
            accecn: Some(AccEcnCounters::default()),
            ..TcpHeader::default()
        };
        let mut ack = PacketBuf::tcp(20, 10, Ecn::NotEct, 0, &ack_hdr, 0);
        l.on_ul_packet(&mut ack, t);
        let h = ack.tcp_header().unwrap();
        assert!(h.accecn.unwrap().ce_bytes > 0, "ledger substituted");
        assert!(ack.checksums_valid(), "checksum refreshed");
        assert!(l.stats().ul_rewritten >= 1);
    }

    #[test]
    fn classic_short_circuit_echoes_ece_until_cwr() {
        let mut l = layer();
        let t = slow_warm_up(&mut l);
        // With no handshake RTT, Eq. 2 reduces to (MSS·K / 2·N_queue)²,
        // which is 1.0 for a small packet on a slow DRB: the mark (and
        // therefore the ECE latch) is deterministic.
        let mut p = data_pkt(Ecn::Ect0, 444, 660);
        l.on_dl_packet(UE, DRB, &mut p, t);
        assert_eq!(p.ecn(), Ecn::Ect0, "downlink untouched under SC");
        let ack_hdr = TcpHeader {
            src_port: 50_000,
            dst_port: 444,
            ack: 1400,
            flags: TcpFlags::new().with(TcpFlags::ACK),
            ..TcpHeader::default()
        };
        let mut ack = PacketBuf::tcp(20, 10, Ecn::NotEct, 0, &ack_hdr, 0);
        l.on_ul_packet(&mut ack, t);
        assert!(
            ack.tcp_header().unwrap().flags.contains(TcpFlags::ECE),
            "ECE latched on uplink ACK"
        );
        assert!(ack.checksums_valid());
        // A downlink CWR (pure header, no payload so no re-mark) clears it.
        let mut cwr_pkt = data_pkt(Ecn::Ect0, 444, 0);
        cwr_pkt.update_tcp(|h| h.flags.set(TcpFlags::CWR));
        l.on_dl_packet(UE, DRB, &mut cwr_pkt, t);
        let mut ack2 = PacketBuf::tcp(20, 10, Ecn::NotEct, 0, &ack_hdr, 0);
        l.on_ul_packet(&mut ack2, Instant::from_millis(61));
        assert!(
            !ack2.tcp_header().unwrap().flags.contains(TcpFlags::ECE),
            "CWR cleared the latch"
        );
    }

    #[test]
    fn non_ecn_flow_untouched_by_default_dropped_when_configured() {
        let mut l = layer();
        warm_up(&mut l, 100, 500);
        let t = Instant::from_millis(60);
        for _ in 0..100 {
            let mut p = udp_pkt(Ecn::NotEct, 1200);
            assert_eq!(l.on_dl_packet(UE, DRB, &mut p, t), DlVerdict::Forward);
            assert_eq!(p.ecn(), Ecn::NotEct);
        }
        // Now with drop_non_ecn: a small packet on a slow DRB makes
        // Eq. 2 deterministic (see `classic_short_circuit_echoes_ece…`).
        let cfg = L4SpanConfig {
            drop_non_ecn: true,
            ..L4SpanConfig::default()
        };
        let mut l2 = L4SpanLayer::new(cfg, SimRng::new(7));
        let t2 = slow_warm_up(&mut l2);
        let mut drops = 0;
        for _ in 0..5 {
            let mut p = udp_pkt(Ecn::NotEct, 672);
            if l2.on_dl_packet(UE, DRB, &mut p, t2) == DlVerdict::Drop {
                drops += 1;
            }
        }
        assert!(drops > 0, "loss-based feedback for non-ECN flows");
    }

    #[test]
    fn sojourn_prediction_tracks_feedback() {
        let mut l = layer();
        warm_up(&mut l, 100, 500);
        // Empty queue: sojourn ≈ 0.
        let s0 = l.predicted_sojourn(UE, DRB).unwrap();
        assert!(s0 < Duration::from_millis(1), "{s0}");
        // 60 stalled packets at ~2.9 MB/s ≈ 30 ms.
        let t = Instant::from_millis(60);
        for _ in 0..60 {
            let mut p = udp_pkt(Ecn::Ect1, 1200);
            l.on_dl_packet(UE, DRB, &mut p, t);
        }
        let s1 = l.predicted_sojourn(UE, DRB).unwrap();
        assert!(
            s1 > Duration::from_millis(15),
            "standing queue must predict sojourn: {s1}"
        );
    }

    #[test]
    fn handover_policy_migrate_keeps_estimates_cold_start_forgets() {
        let mut migrate = layer();
        let mut cold = layer();
        warm_up(&mut migrate, 200, 500);
        warm_up(&mut cold, 200, 500);
        assert!(migrate.egress_rate(UE, DRB).is_some());
        migrate.on_handover(UE, DRB, HandoverPolicy::MigrateState);
        cold.on_handover(UE, DRB, HandoverPolicy::ColdStart);
        assert!(
            migrate.egress_rate(UE, DRB).is_some(),
            "MigrateState: old estimate drives the first post-HO marks"
        );
        assert_eq!(
            cold.egress_rate(UE, DRB),
            None,
            "ColdStart: silent until a fresh window fills"
        );
        // Both keep the profile table's SN mirror (PDCP continuity).
        assert!(migrate.queued_bytes(UE, DRB) == cold.queued_bytes(UE, DRB));
        // A deep queue right after handover: only MigrateState can mark.
        let t = Instant::from_millis(120);
        let (mut marks_migrate, mut marks_cold) = (0, 0);
        for _ in 0..300 {
            let mut p = udp_pkt(Ecn::Ect1, 1200);
            migrate.on_dl_packet(UE, DRB, &mut p, t);
            if p.ecn() == Ecn::Ce {
                marks_migrate += 1;
            }
            let mut p = udp_pkt(Ecn::Ect1, 1200);
            cold.on_dl_packet(UE, DRB, &mut p, t);
            if p.ecn() == Ecn::Ce {
                marks_cold += 1;
            }
        }
        assert!(marks_migrate > 200, "migrated estimate marks: {marks_migrate}");
        assert_eq!(marks_cold, 0, "cold start cannot judge congestion yet");
    }

    #[test]
    fn drb_state_extract_reseed_roundtrip() {
        let mut a = layer();
        warm_up(&mut a, 200, 500);
        let queued_before = a.queued_bytes(UE, DRB);
        let rate_before = a.egress_rate(UE, DRB);
        let st = a.extract_drb_state(UE, DRB).expect("state exists");
        assert_eq!(a.egress_rate(UE, DRB), None, "state left the instance");
        // A second CU-UP instance inherits the DRB wholesale.
        let mut b = layer();
        b.reseed_drb_state(UE, DRB, st);
        assert_eq!(b.egress_rate(UE, DRB), rate_before);
        assert_eq!(b.queued_bytes(UE, DRB), queued_before);
        assert!(a.extract_drb_state(UE, DRB).is_none());
    }

    #[test]
    fn memory_accounting_is_sane() {
        let mut l = layer();
        warm_up(&mut l, 1000, 100);
        let m = l.memory_bytes();
        assert!(m > 0 && m < 1 << 20, "bounded state: {m} bytes");
    }
}

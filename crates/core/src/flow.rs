//! Flow bookkeeping: five-tuple → (UE, DRB) mapping, per-flow feedback
//! state for short-circuiting, and handshake-based RTT* estimation.

use l4span_net::ecn::FlowClass;
use l4span_net::{AccEcnCounters, FiveTuple};
use l4span_ran::{DrbId, UeId};
use l4span_sim::{Duration, FxHashMap, Instant};

/// Per-flow state L4Span keeps (paper §4.1, §4.2.2, §4.4).
#[derive(Debug)]
pub struct FlowState {
    /// UE this flow belongs to.
    pub ue: UeId,
    /// DRB the flow rides.
    pub drb: DrbId,
    /// L4S / classic / non-ECN, from the first downlink packet's ECN field.
    pub class: FlowClass,
    /// True once a handshake packet carried the AccECN TCP option.
    pub uses_accecn: bool,
    /// Classic short-circuit state: echo ECE on uplink ACKs until the
    /// sender's CWR is observed downlink.
    pub ece_on: bool,
    /// AccECN bookkeeping ledger ("L4Span serves as a bookkeeper for the
    /// client"): cumulative byte counters by codepoint *as L4Span marked
    /// them*, substituted into uplink ACKs when short-circuiting.
    pub ledger: AccEcnCounters,
    /// CE-marked packet count (feeds the ACE field, modulo 8).
    pub ce_packets: u32,
    /// Time of the first forward (downlink) TCP packet.
    pub first_fwd_at: Option<Instant>,
    /// R̂TT*: spacing of the first two forward TCP packets (§4.2.2).
    pub rtt_star: Option<Duration>,
    /// Flow MSS from the handshake option, else the configured default.
    pub mss: usize,
    /// Cumulative tentative/actual CE marks on this flow (diagnostics).
    pub marks: u64,
}

impl FlowState {
    /// Fresh flow state.
    pub fn new(ue: UeId, drb: DrbId, class: FlowClass, default_mss: usize) -> FlowState {
        FlowState {
            ue,
            drb,
            class,
            uses_accecn: false,
            ece_on: false,
            ledger: AccEcnCounters::default(),
            ce_packets: 0,
            first_fwd_at: None,
            rtt_star: None,
            mss: default_mss,
            marks: 0,
        }
    }

    /// Feed a forward-packet timestamp into the RTT* estimator: the gap
    /// between the first two forward TCP packets approximates the path
    /// RTT (SYN-ACK → first data spans client-ACK round).
    pub fn observe_forward(&mut self, now: Instant) {
        match (self.first_fwd_at, self.rtt_star) {
            (None, _) => self.first_fwd_at = Some(now),
            (Some(t0), None) => {
                let gap = now.saturating_since(t0);
                if !gap.is_zero() {
                    self.rtt_star = Some(gap);
                }
            }
            _ => {}
        }
    }
}

/// The five-tuple table: downlink tuples map to flow state; uplink ACKs
/// are resolved through the reversed tuple (Fig. 23 pseudocode).
///
/// Per-DRB class counts are maintained incrementally on insert and
/// reclassification, so the per-packet shared-DRB decision (§4.2) is an
/// O(1) lookup instead of a scan over every tracked flow.
#[derive(Debug, Default)]
pub struct FlowTable {
    flows: FxHashMap<FiveTuple, FlowState>,
    /// (ue, drb) → [l4s, classic, non_ecn] flow counts.
    counts: FxHashMap<(UeId, DrbId), [u32; 3]>,
}

fn class_idx(class: FlowClass) -> usize {
    match class {
        FlowClass::L4s => 0,
        FlowClass::Classic => 1,
        FlowClass::NonEcn => 2,
    }
}

impl FlowTable {
    /// Empty table.
    pub fn new() -> FlowTable {
        FlowTable::default()
    }

    /// The one insert path (shared by [`FlowTable::get_or_insert`] and
    /// [`FlowTable::observe`]): lookup-or-create with count bookkeeping.
    /// Free function over the two fields so callers can keep borrowing
    /// `counts` after the returned flow borrow (field-disjoint).
    fn entry<'a>(
        flows: &'a mut FxHashMap<FiveTuple, FlowState>,
        counts: &mut FxHashMap<(UeId, DrbId), [u32; 3]>,
        tuple: FiveTuple,
        ue: UeId,
        drb: DrbId,
        class: FlowClass,
        default_mss: usize,
    ) -> &'a mut FlowState {
        flows.entry(tuple).or_insert_with(|| {
            counts.entry((ue, drb)).or_default()[class_idx(class)] += 1;
            FlowState::new(ue, drb, class, default_mss)
        })
    }

    /// Lookup or create the flow for a downlink tuple.
    pub fn get_or_insert(
        &mut self,
        tuple: FiveTuple,
        ue: UeId,
        drb: DrbId,
        class: FlowClass,
        default_mss: usize,
    ) -> &mut FlowState {
        Self::entry(
            &mut self.flows,
            &mut self.counts,
            tuple,
            ue,
            drb,
            class,
            default_mss,
        )
    }

    /// Per-packet entry point: lookup-or-create the flow, and upgrade a
    /// NonECN-classified flow to the observed ECT `class` (handshake
    /// packets are Not-ECT, so the real class shows on the first ECT
    /// data packet). One table probe on the hot path; class counts stay
    /// in sync through the upgrade.
    pub fn observe(
        &mut self,
        tuple: FiveTuple,
        ue: UeId,
        drb: DrbId,
        class: FlowClass,
        default_mss: usize,
    ) -> &mut FlowState {
        let flow = Self::entry(
            &mut self.flows,
            &mut self.counts,
            tuple,
            ue,
            drb,
            class,
            default_mss,
        );
        if flow.class == FlowClass::NonEcn && class != FlowClass::NonEcn {
            let c = self.counts.entry((flow.ue, flow.drb)).or_default();
            c[class_idx(FlowClass::NonEcn)] =
                c[class_idx(FlowClass::NonEcn)].saturating_sub(1);
            c[class_idx(class)] += 1;
            flow.class = class;
        }
        flow
    }

    /// Downlink-tuple lookup.
    pub fn get(&self, tuple: &FiveTuple) -> Option<&FlowState> {
        self.flows.get(tuple)
    }

    /// Mutable downlink-tuple lookup.
    pub fn get_mut(&mut self, tuple: &FiveTuple) -> Option<&mut FlowState> {
        self.flows.get_mut(tuple)
    }

    /// Resolve an *uplink* packet's tuple to its downlink flow.
    pub fn reverse_lookup_mut(&mut self, uplink: &FiveTuple) -> Option<&mut FlowState> {
        self.flows.get_mut(&uplink.reversed())
    }

    /// Number of tracked flows.
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }

    /// Iterate flows (diagnostics).
    pub fn iter(&self) -> impl Iterator<Item = (&FiveTuple, &FlowState)> {
        self.flows.iter()
    }

    /// Count flows of each class on a DRB: (l4s, classic, non_ecn).
    /// O(1): read from the incrementally-maintained counters.
    pub fn class_counts(&self, ue: UeId, drb: DrbId) -> (usize, usize, usize) {
        let c = self.counts.get(&(ue, drb)).copied().unwrap_or_default();
        (c[0] as usize, c[1] as usize, c[2] as usize)
    }

    /// Remove a flow entry and keep the class counters in sync. The Xn
    /// handover path uses this to carry a UE's per-tuple state between
    /// per-cell marker instances.
    pub fn extract(&mut self, tuple: &FiveTuple) -> Option<FlowState> {
        let flow = self.flows.remove(tuple)?;
        if let Some(c) = self.counts.get_mut(&(flow.ue, flow.drb)) {
            c[class_idx(flow.class)] = c[class_idx(flow.class)].saturating_sub(1);
        }
        Some(flow)
    }

    /// Re-insert a flow entry previously removed with
    /// [`FlowTable::extract`], restoring its class counter.
    pub fn absorb(&mut self, tuple: FiveTuple, flow: FlowState) {
        self.counts.entry((flow.ue, flow.drb)).or_default()[class_idx(flow.class)] += 1;
        self.flows.insert(tuple, flow);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use l4span_net::Protocol;

    fn tuple() -> FiveTuple {
        FiveTuple {
            src_ip: 1,
            dst_ip: 2,
            src_port: 443,
            dst_port: 50_000,
            protocol: Protocol::Tcp,
        }
    }

    #[test]
    fn reverse_lookup_finds_downlink_flow() {
        let mut t = FlowTable::new();
        t.get_or_insert(tuple(), UeId(0), DrbId(1), FlowClass::L4s, 1400);
        let up = tuple().reversed();
        let f = t.reverse_lookup_mut(&up).expect("found");
        assert_eq!(f.drb, DrbId(1));
        assert_eq!(f.class, FlowClass::L4s);
    }

    #[test]
    fn rtt_star_from_first_two_forward_packets() {
        let mut f = FlowState::new(UeId(0), DrbId(0), FlowClass::Classic, 1400);
        f.observe_forward(Instant::from_millis(100));
        assert_eq!(f.rtt_star, None);
        f.observe_forward(Instant::from_millis(140));
        assert_eq!(f.rtt_star, Some(Duration::from_millis(40)));
        // Further packets don't change it.
        f.observe_forward(Instant::from_millis(300));
        assert_eq!(f.rtt_star, Some(Duration::from_millis(40)));
    }

    #[test]
    fn zero_gap_is_not_an_rtt() {
        let mut f = FlowState::new(UeId(0), DrbId(0), FlowClass::Classic, 1400);
        f.observe_forward(Instant::from_millis(5));
        f.observe_forward(Instant::from_millis(5));
        assert_eq!(f.rtt_star, None, "coincident packets carry no signal");
    }

    #[test]
    fn class_counts_by_drb() {
        let mut t = FlowTable::new();
        let mut tp = tuple();
        t.get_or_insert(tp, UeId(0), DrbId(0), FlowClass::L4s, 1400);
        tp.src_port = 444;
        t.get_or_insert(tp, UeId(0), DrbId(0), FlowClass::Classic, 1400);
        tp.src_port = 445;
        t.get_or_insert(tp, UeId(0), DrbId(1), FlowClass::Classic, 1400);
        assert_eq!(t.class_counts(UeId(0), DrbId(0)), (1, 1, 0));
        assert_eq!(t.class_counts(UeId(0), DrbId(1)), (0, 1, 0));
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn observe_upgrades_non_ecn_once_and_keeps_counts() {
        let mut t = FlowTable::new();
        // Handshake packet: Not-ECT.
        let f = t.observe(tuple(), UeId(0), DrbId(0), FlowClass::NonEcn, 1400);
        assert_eq!(f.class, FlowClass::NonEcn);
        assert_eq!(t.class_counts(UeId(0), DrbId(0)), (0, 0, 1));
        // First ECT data packet: the flow's real class shows.
        let f = t.observe(tuple(), UeId(0), DrbId(0), FlowClass::L4s, 1400);
        assert_eq!(f.class, FlowClass::L4s);
        assert_eq!(t.class_counts(UeId(0), DrbId(0)), (1, 0, 0));
        // Later Not-ECT packets (pure ACKs) must not downgrade it back.
        let f = t.observe(tuple(), UeId(0), DrbId(0), FlowClass::NonEcn, 1400);
        assert_eq!(f.class, FlowClass::L4s);
        assert_eq!(t.class_counts(UeId(0), DrbId(0)), (1, 0, 0));
        assert_eq!(t.len(), 1);
    }
}

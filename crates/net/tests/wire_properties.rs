//! Wire-format robustness: parsers must never panic on arbitrary bytes,
//! and emit→mutate→parse cycles must preserve checksums exactly.

use proptest::prelude::*;

use l4span_net::{checksum, Ecn, Ipv4Header, PacketBuf, TcpHeader, UdpHeader};

proptest! {
    /// IPv4 parsing of arbitrary bytes is total (errors, never panics).
    #[test]
    fn ipv4_parse_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let _ = Ipv4Header::parse(&bytes);
    }

    /// TCP parsing of arbitrary bytes is total.
    #[test]
    fn tcp_parse_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
        let _ = TcpHeader::parse(&bytes);
    }

    /// UDP parsing of arbitrary bytes is total.
    #[test]
    fn udp_parse_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..32)) {
        let _ = UdpHeader::parse(&bytes);
    }

    /// A single-bit corruption anywhere in an emitted IPv4 header is
    /// detected by the checksum (unless it hits the checksum field's own
    /// complement representation — the classic 0x0000/0xFFFF ambiguity —
    /// which cannot occur for our generated headers).
    #[test]
    fn ipv4_checksum_detects_bit_flips(
        flip_byte in 0usize..20,
        flip_bit in 0u8..8,
        src in any::<u32>(),
        dst in any::<u32>(),
        len in 20u16..1500,
    ) {
        let h = Ipv4Header {
            dscp: 0,
            ecn: Ecn::Ect1,
            total_len: len,
            identification: 7,
            dont_fragment: true,
            ttl: 64,
            protocol: 6,
            header_checksum: 0,
            src,
            dst,
        };
        let mut buf = [0u8; 20];
        h.emit(&mut buf);
        prop_assert!(Ipv4Header::parse(&buf).is_ok());
        buf[flip_byte] ^= 1 << flip_bit;
        // Either the parse fails (checksum/version/IHL) or — if the flip
        // hit a field that keeps the one's-complement sum intact — it
        // must be because the flip restored an equivalent sum, which a
        // single bit flip cannot do.
        prop_assert!(Ipv4Header::parse(&buf).is_err(), "bit flip undetected");
    }

    /// The RFC 1624 incremental update always agrees with recomputation,
    /// for arbitrary buffers and word positions.
    #[test]
    fn incremental_checksum_agrees_with_full(
        mut data in proptest::collection::vec(any::<u8>(), 2..64),
        word_idx in 0usize..31,
        new_word in any::<u16>(),
    ) {
        if data.len() % 2 == 1 {
            data.push(0);
        }
        let idx = (word_idx % (data.len() / 2)) * 2;
        let old = checksum::checksum(&data);
        let old_word = u16::from_be_bytes([data[idx], data[idx + 1]]);
        data[idx..idx + 2].copy_from_slice(&new_word.to_be_bytes());
        let full = checksum::checksum(&data);
        let inc = checksum::incremental_update(old, old_word, new_word);
        prop_assert_eq!(full, inc);
    }

    /// PacketBuf TCP construction always yields valid checksums and a
    /// parseable five-tuple, for arbitrary field values.
    #[test]
    fn packet_construction_is_always_valid(
        src in any::<u32>(),
        dst in any::<u32>(),
        sport in any::<u16>(),
        dport in any::<u16>(),
        seq in any::<u32>(),
        payload in 0usize..3000,
        ecn in prop_oneof![Just(Ecn::NotEct), Just(Ecn::Ect0), Just(Ecn::Ect1), Just(Ecn::Ce)],
    ) {
        let hdr = TcpHeader {
            src_port: sport,
            dst_port: dport,
            seq,
            ..TcpHeader::default()
        };
        let p = PacketBuf::tcp(src, dst, ecn, 1, &hdr, payload);
        prop_assert!(p.checksums_valid());
        let ft = p.five_tuple().unwrap();
        prop_assert_eq!(ft.src_ip, src);
        prop_assert_eq!(ft.dst_port, dport);
        prop_assert_eq!(p.wire_len(), 40 + payload);
    }
}

/// Reference implementation of the pre-inline (Vec-backed) header emit:
/// build the same IP + transport headers into a plain `Vec<u8>` exactly
/// the way `PacketBuf` did before the fixed-array layout landed.
fn reference_tcp_emit(
    src: u32,
    dst: u32,
    ecn: Ecn,
    ident: u16,
    hdr: &TcpHeader,
    payload_len: usize,
) -> Vec<u8> {
    let tcp_hlen = hdr.header_len();
    let ip = Ipv4Header {
        dscp: 0,
        ecn,
        total_len: (20 + tcp_hlen + payload_len) as u16,
        identification: ident,
        dont_fragment: true,
        ttl: 64,
        protocol: 6,
        header_checksum: 0,
        src,
        dst,
    };
    let mut head = vec![0u8; 20 + tcp_hlen];
    ip.emit(&mut head[..20]);
    hdr.emit(&mut head[20..], src, dst, payload_len);
    head
}

fn reference_udp_emit(
    src: u32,
    dst: u32,
    ecn: Ecn,
    ident: u16,
    sport: u16,
    dport: u16,
    payload_len: usize,
) -> Vec<u8> {
    let ip = Ipv4Header {
        dscp: 0,
        ecn,
        total_len: (20 + 8 + payload_len) as u16,
        identification: ident,
        dont_fragment: true,
        ttl: 64,
        protocol: 17,
        header_checksum: 0,
        src,
        dst,
    };
    let udp = UdpHeader {
        src_port: sport,
        dst_port: dport,
        length: (8 + payload_len) as u16,
        checksum: 0,
    };
    let mut head = vec![0u8; 28];
    ip.emit(&mut head[..20]);
    udp.emit(&mut head[20..], src, dst);
    head
}

#[test]
fn packet_buf_layout_is_inline_copy_and_small() {
    fn is_copy<T: Copy>() {}
    is_copy::<PacketBuf>();
    assert!(
        std::mem::size_of::<PacketBuf>() <= 128,
        "PacketBuf must stay ≤128 bytes, is {}",
        std::mem::size_of::<PacketBuf>()
    );
}

proptest! {
    /// The inline-array TCP emit is byte-identical (headers *and*
    /// checksums) to the reference Vec-backed emit, for random header
    /// fields, option sets, and payload lengths — and header accessors
    /// agree after a round-trip.
    #[test]
    fn inline_tcp_matches_reference_vec_emit(
        src in any::<u32>(),
        dst in any::<u32>(),
        sport in any::<u16>(),
        dport in any::<u16>(),
        seq in any::<u32>(),
        ack in any::<u32>(),
        window in any::<u16>(),
        ident in any::<u16>(),
        payload in 0usize..60_000,
        with_mss in any::<bool>(),
        with_accecn in any::<bool>(),
        ecn in prop_oneof![Just(Ecn::NotEct), Just(Ecn::Ect0), Just(Ecn::Ect1), Just(Ecn::Ce)],
    ) {
        let hdr = TcpHeader {
            src_port: sport,
            dst_port: dport,
            seq,
            ack,
            window,
            mss: with_mss.then_some(1460),
            accecn: with_accecn.then_some(Default::default()),
            ..TcpHeader::default()
        };
        let p = PacketBuf::tcp(src, dst, ecn, ident, &hdr, payload);
        let reference = reference_tcp_emit(src, dst, ecn, ident, &hdr, payload);
        prop_assert_eq!(p.header_bytes(), &reference[..], "emitted bytes diverge");
        prop_assert!(p.checksums_valid());
        prop_assert_eq!(p.identification(), ident);
        prop_assert_eq!(p.wire_len(), reference.len() + payload);
        let rt = p.tcp_header().expect("tcp parses");
        prop_assert_eq!(rt.src_port, sport);
        prop_assert_eq!(rt.seq, seq);
        // Copy semantics: a byte-for-byte clone with no allocator involved.
        let q = p;
        prop_assert_eq!(q, p);
    }

    /// Same byte-exactness for the UDP constructor.
    #[test]
    fn inline_udp_matches_reference_vec_emit(
        src in any::<u32>(),
        dst in any::<u32>(),
        sport in any::<u16>(),
        dport in any::<u16>(),
        ident in any::<u16>(),
        payload in 0usize..60_000,
        ecn in prop_oneof![Just(Ecn::NotEct), Just(Ecn::Ect0), Just(Ecn::Ect1), Just(Ecn::Ce)],
    ) {
        let p = PacketBuf::udp(src, dst, ecn, ident, sport, dport, payload);
        let reference = reference_udp_emit(src, dst, ecn, ident, sport, dport, payload);
        prop_assert_eq!(p.header_bytes(), &reference[..], "emitted bytes diverge");
        prop_assert_eq!(p.identification(), ident);
        prop_assert_eq!(p.wire_len(), 28 + payload);
        let u = p.udp_header().expect("udp parses");
        prop_assert_eq!(u.src_port, sport);
        prop_assert_eq!(u.payload_len(), payload);
    }

    /// ECN rewriting on the inline layout matches a rewrite on the
    /// reference bytes (the RFC 1624 incremental checksum fix-up applies
    /// to the same words).
    #[test]
    fn inline_ecn_rewrite_matches_reference(
        src in any::<u32>(),
        dst in any::<u32>(),
        payload in 0usize..3000,
        target in prop_oneof![Just(Ecn::NotEct), Just(Ecn::Ect0), Just(Ecn::Ect1), Just(Ecn::Ce)],
    ) {
        let hdr = TcpHeader { src_port: 443, dst_port: 50_000, ..TcpHeader::default() };
        let mut p = PacketBuf::tcp(src, dst, Ecn::Ect1, 9, &hdr, payload);
        let mut reference = reference_tcp_emit(src, dst, Ecn::Ect1, 9, &hdr, payload);
        p.set_ecn(target);
        l4span_net::ipv4::set_ecn_in_place(&mut reference, target);
        prop_assert_eq!(p.header_bytes(), &reference[..]);
        prop_assert!(p.checksums_valid());
    }
}

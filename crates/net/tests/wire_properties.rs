//! Wire-format robustness: parsers must never panic on arbitrary bytes,
//! and emit→mutate→parse cycles must preserve checksums exactly.

use proptest::prelude::*;

use l4span_net::{checksum, Ecn, Ipv4Header, PacketBuf, TcpHeader, UdpHeader};

proptest! {
    /// IPv4 parsing of arbitrary bytes is total (errors, never panics).
    #[test]
    fn ipv4_parse_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let _ = Ipv4Header::parse(&bytes);
    }

    /// TCP parsing of arbitrary bytes is total.
    #[test]
    fn tcp_parse_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
        let _ = TcpHeader::parse(&bytes);
    }

    /// UDP parsing of arbitrary bytes is total.
    #[test]
    fn udp_parse_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..32)) {
        let _ = UdpHeader::parse(&bytes);
    }

    /// A single-bit corruption anywhere in an emitted IPv4 header is
    /// detected by the checksum (unless it hits the checksum field's own
    /// complement representation — the classic 0x0000/0xFFFF ambiguity —
    /// which cannot occur for our generated headers).
    #[test]
    fn ipv4_checksum_detects_bit_flips(
        flip_byte in 0usize..20,
        flip_bit in 0u8..8,
        src in any::<u32>(),
        dst in any::<u32>(),
        len in 20u16..1500,
    ) {
        let h = Ipv4Header {
            dscp: 0,
            ecn: Ecn::Ect1,
            total_len: len,
            identification: 7,
            dont_fragment: true,
            ttl: 64,
            protocol: 6,
            header_checksum: 0,
            src,
            dst,
        };
        let mut buf = [0u8; 20];
        h.emit(&mut buf);
        prop_assert!(Ipv4Header::parse(&buf).is_ok());
        buf[flip_byte] ^= 1 << flip_bit;
        // Either the parse fails (checksum/version/IHL) or — if the flip
        // hit a field that keeps the one's-complement sum intact — it
        // must be because the flip restored an equivalent sum, which a
        // single bit flip cannot do.
        prop_assert!(Ipv4Header::parse(&buf).is_err(), "bit flip undetected");
    }

    /// The RFC 1624 incremental update always agrees with recomputation,
    /// for arbitrary buffers and word positions.
    #[test]
    fn incremental_checksum_agrees_with_full(
        mut data in proptest::collection::vec(any::<u8>(), 2..64),
        word_idx in 0usize..31,
        new_word in any::<u16>(),
    ) {
        if data.len() % 2 == 1 {
            data.push(0);
        }
        let idx = (word_idx % (data.len() / 2)) * 2;
        let old = checksum::checksum(&data);
        let old_word = u16::from_be_bytes([data[idx], data[idx + 1]]);
        data[idx..idx + 2].copy_from_slice(&new_word.to_be_bytes());
        let full = checksum::checksum(&data);
        let inc = checksum::incremental_update(old, old_word, new_word);
        prop_assert_eq!(full, inc);
    }

    /// PacketBuf TCP construction always yields valid checksums and a
    /// parseable five-tuple, for arbitrary field values.
    #[test]
    fn packet_construction_is_always_valid(
        src in any::<u32>(),
        dst in any::<u32>(),
        sport in any::<u16>(),
        dport in any::<u16>(),
        seq in any::<u32>(),
        payload in 0usize..3000,
        ecn in prop_oneof![Just(Ecn::NotEct), Just(Ecn::Ect0), Just(Ecn::Ect1), Just(Ecn::Ce)],
    ) {
        let hdr = TcpHeader {
            src_port: sport,
            dst_port: dport,
            seq,
            ..TcpHeader::default()
        };
        let p = PacketBuf::tcp(src, dst, ecn, 1, &hdr, payload);
        prop_assert!(p.checksums_valid());
        let ft = p.five_tuple().unwrap();
        prop_assert_eq!(ft.src_ip, src);
        prop_assert_eq!(ft.dst_port, dport);
        prop_assert_eq!(p.wire_len(), 40 + payload);
    }
}

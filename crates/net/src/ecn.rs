//! RFC 3168 ECN codepoints and the L4S identifier convention.
//!
//! The two low-order bits of the IPv4 ToS byte signal ECN capability and
//! congestion. L4Span classifies flows by this field on the first downlink
//! packet (paper §4.1): `ECT(1)` (binary 01) identifies L4S/scalable flows
//! per RFC 9331, `ECT(0)` (binary 10) identifies classic ECN flows, and
//! `Not-ECT` flows receive drop-based feedback only.

/// The four ECN codepoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Ecn {
    /// Not ECN-capable transport (00).
    NotEct = 0b00,
    /// ECT(1): L4S identifier (01).
    Ect1 = 0b01,
    /// ECT(0): classic ECN-capable (10).
    Ect0 = 0b10,
    /// Congestion experienced (11).
    Ce = 0b11,
}

impl Ecn {
    /// Decode from the two low bits of a ToS byte.
    #[inline]
    pub fn from_bits(bits: u8) -> Ecn {
        match bits & 0b11 {
            0b00 => Ecn::NotEct,
            0b01 => Ecn::Ect1,
            0b10 => Ecn::Ect0,
            _ => Ecn::Ce,
        }
    }

    /// The two-bit wire value.
    #[inline]
    pub fn bits(self) -> u8 {
        self as u8
    }

    /// True if the transport declared ECN capability (`ECT(0)`, `ECT(1)`)
    /// or the packet already carries a CE mark.
    #[inline]
    pub fn is_ect(self) -> bool {
        self != Ecn::NotEct
    }

    /// True for the L4S identifier codepoint `ECT(1)`.
    ///
    /// Per RFC 9331, CE packets are ambiguous (they may have entered as
    /// either ECT); flow classification therefore keys on the codepoint of
    /// *unmarked* packets, which is what L4Span records at flow setup.
    #[inline]
    pub fn is_l4s(self) -> bool {
        self == Ecn::Ect1
    }

    /// True for the classic ECN codepoint `ECT(0)`.
    #[inline]
    pub fn is_classic_ect(self) -> bool {
        self == Ecn::Ect0
    }

    /// True for congestion-experienced.
    #[inline]
    pub fn is_ce(self) -> bool {
        self == Ecn::Ce
    }

    /// True when rewriting `from` to `to` follows the legal codepoint
    /// lattice:
    ///
    /// * any → `Not-ECT` (bleaching erases capability, never forges it),
    /// * `ECT(x)` → `CE` (a congestion mark),
    /// * `ECT(1)` ↔ `ECT(0)` (middlebox mangling between ECT codepoints),
    /// * the identity transition.
    ///
    /// Illegal: `Not-ECT` → anything else (forging ECN capability the
    /// transport never declared) and `CE` → `ECT(x)` (erasing a
    /// congestion signal already applied upstream).
    #[inline]
    pub fn transition_legal(from: Ecn, to: Ecn) -> bool {
        match (from, to) {
            (_, Ecn::NotEct) => true,
            (f, t) if f == t => true,
            (Ecn::Ect0 | Ecn::Ect1, Ecn::Ce) => true,
            (Ecn::Ect0, Ecn::Ect1) | (Ecn::Ect1, Ecn::Ect0) => true,
            _ => false,
        }
    }

    /// Bleach the codepoint: the middlebox behaviour measured in the wild
    /// where any ECT/CE marking is rewritten to `Not-ECT`. Always legal.
    #[inline]
    #[must_use = "bleach returns the new codepoint; it does not mutate"]
    pub fn bleach(self) -> Ecn {
        Ecn::NotEct
    }

    /// Rewrite to `target`, debug-asserting the transition follows the
    /// legal codepoint lattice (see [`Ecn::transition_legal`]). Use this
    /// instead of writing codepoints ad hoc so illegal rewrites (forging
    /// ECT from `Not-ECT`, erasing a CE mark) are caught in debug builds.
    #[inline]
    #[must_use = "remark_to returns the new codepoint; it does not mutate"]
    pub fn remark_to(self, target: Ecn) -> Ecn {
        debug_assert!(
            Ecn::transition_legal(self, target),
            "illegal ECN transition {self:?} -> {target:?}"
        );
        target
    }
}

/// Flow class as L4Span sees it: derived from the ECN field of the first
/// downlink datagram of the flow (paper §4.1 and Fig. 22 pseudocode).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlowClass {
    /// Scalable / L4S flow (`ECT(1)`): marked with the Eq. 1 strategy.
    L4s,
    /// Classic ECN flow (`ECT(0)`): marked with the Eq. 2 strategy.
    Classic,
    /// Not ECN capable: can only be signalled by dropping.
    NonEcn,
}

impl FlowClass {
    /// Classify from a packet's ECN codepoint.
    pub fn from_ecn(ecn: Ecn) -> FlowClass {
        match ecn {
            Ecn::Ect1 => FlowClass::L4s,
            Ecn::Ect0 => FlowClass::Classic,
            // CE on the very first packet of a flow means an upstream
            // bottleneck already marked it; the safe classification is
            // classic (RFC 3168 behaviour).
            Ecn::Ce => FlowClass::Classic,
            Ecn::NotEct => FlowClass::NonEcn,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_roundtrip() {
        for e in [Ecn::NotEct, Ecn::Ect1, Ecn::Ect0, Ecn::Ce] {
            assert_eq!(Ecn::from_bits(e.bits()), e);
        }
        // Upper bits are ignored.
        assert_eq!(Ecn::from_bits(0b1111_1101), Ecn::Ect1);
    }

    #[test]
    fn classification_matches_paper() {
        assert_eq!(FlowClass::from_ecn(Ecn::Ect1), FlowClass::L4s);
        assert_eq!(FlowClass::from_ecn(Ecn::Ect0), FlowClass::Classic);
        assert_eq!(FlowClass::from_ecn(Ecn::NotEct), FlowClass::NonEcn);
        assert_eq!(FlowClass::from_ecn(Ecn::Ce), FlowClass::Classic);
    }

    #[test]
    fn transition_lattice() {
        use Ecn::*;
        // Bleaching is legal from every codepoint.
        for e in [NotEct, Ect1, Ect0, Ce] {
            assert!(Ecn::transition_legal(e, NotEct));
            assert_eq!(e.bleach(), NotEct);
            // Identity is legal.
            assert!(Ecn::transition_legal(e, e));
            assert_eq!(e.remark_to(e), e);
        }
        // Marking ECT to CE and mangling between ECT codepoints is legal.
        assert!(Ecn::transition_legal(Ect1, Ce));
        assert!(Ecn::transition_legal(Ect0, Ce));
        assert!(Ecn::transition_legal(Ect1, Ect0));
        assert!(Ecn::transition_legal(Ect0, Ect1));
        assert_eq!(Ect1.remark_to(Ce), Ce);
        assert_eq!(Ect1.remark_to(Ect0), Ect0);
        // Forging capability or erasing a mark is not.
        assert!(!Ecn::transition_legal(NotEct, Ect1));
        assert!(!Ecn::transition_legal(NotEct, Ect0));
        assert!(!Ecn::transition_legal(NotEct, Ce));
        assert!(!Ecn::transition_legal(Ce, Ect1));
        assert!(!Ecn::transition_legal(Ce, Ect0));
    }

    #[test]
    #[should_panic(expected = "illegal ECN transition")]
    #[cfg(debug_assertions)]
    fn remark_rejects_forged_capability() {
        let _ = Ecn::NotEct.remark_to(Ecn::Ect1);
    }

    #[test]
    fn predicates() {
        assert!(Ecn::Ect1.is_l4s() && !Ecn::Ect0.is_l4s());
        assert!(Ecn::Ect0.is_classic_ect());
        assert!(Ecn::Ce.is_ce() && Ecn::Ce.is_ect());
        assert!(!Ecn::NotEct.is_ect());
    }
}

//! RFC 9293 TCP header with classic ECN flags (RFC 3168) and the AccECN
//! byte counters (draft-ietf-tcpm-accurate-ecn) that Prague and BBRv2 use
//! for feedback — and that L4Span rewrites when short-circuiting the RAN
//! (paper §4.4).

use crate::checksum;

/// TCP flag bits. Bit 8 is the AE bit (formerly NS), which together with
/// CWR and ECE forms the 3-bit ACE counter of AccECN.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TcpFlags(pub u16);

impl TcpFlags {
    /// FIN: no more data from sender.
    pub const FIN: u16 = 0x001;
    /// SYN: synchronise sequence numbers.
    pub const SYN: u16 = 0x002;
    /// RST: reset the connection.
    pub const RST: u16 = 0x004;
    /// PSH: push function.
    pub const PSH: u16 = 0x008;
    /// ACK: acknowledgment field significant.
    pub const ACK: u16 = 0x010;
    /// URG: urgent pointer significant.
    pub const URG: u16 = 0x020;
    /// ECE: ECN-Echo (RFC 3168), or ACE bit 0 under AccECN.
    pub const ECE: u16 = 0x040;
    /// CWR: congestion window reduced (RFC 3168), or ACE bit 1.
    pub const CWR: u16 = 0x080;
    /// AE (accurate ECN, ex-NS): ACE bit 2.
    pub const AE: u16 = 0x100;

    /// Empty flag set.
    pub fn new() -> TcpFlags {
        TcpFlags(0)
    }

    /// True if `bit` (one of the constants above) is set.
    #[inline]
    pub fn contains(self, bit: u16) -> bool {
        self.0 & bit != 0
    }

    /// Set `bit`.
    #[inline]
    pub fn set(&mut self, bit: u16) {
        self.0 |= bit;
    }

    /// Clear `bit`.
    #[inline]
    pub fn clear(&mut self, bit: u16) {
        self.0 &= !bit;
    }

    /// Builder-style combinator.
    #[inline]
    pub fn with(mut self, bit: u16) -> TcpFlags {
        self.set(bit);
        self
    }

    /// The 3-bit ACE counter (AE·4 + CWR·2 + ECE), used by AccECN to count
    /// CE-marked *packets* modulo 8.
    #[inline]
    pub fn ace(self) -> u8 {
        // AE (bit 8) -> bit 2, CWR (bit 7) -> bit 1, ECE (bit 6) -> bit 0:
        // all three shift right by six places.
        (((self.0 & (Self::AE | Self::CWR | Self::ECE)) >> 6) & 0b111) as u8
    }

    /// Store a 3-bit value into the ACE field.
    #[inline]
    pub fn set_ace(&mut self, v: u8) {
        self.0 &= !(Self::AE | Self::CWR | Self::ECE);
        let v = u16::from(v & 0b111);
        if v & 0b100 != 0 {
            self.0 |= Self::AE;
        }
        if v & 0b010 != 0 {
            self.0 |= Self::CWR;
        }
        if v & 0b001 != 0 {
            self.0 |= Self::ECE;
        }
    }
}

/// AccECN byte counters carried in the AccECN TCP option (all modulo
/// 2^24, as on the wire). Field names follow the draft: `ECEB` counts
/// CE-marked payload bytes, `EE0B`/`EE1B` count ECT(0)/ECT(1) bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AccEcnCounters {
    /// Bytes received with ECT(0) (EE0B).
    pub ect0_bytes: u32,
    /// Bytes received with CE (ECEB).
    pub ce_bytes: u32,
    /// Bytes received with ECT(1) (EE1B).
    pub ect1_bytes: u32,
}

impl AccEcnCounters {
    /// Wrap all counters to their 24-bit wire width.
    pub fn wrapped(self) -> AccEcnCounters {
        AccEcnCounters {
            ect0_bytes: self.ect0_bytes & 0x00FF_FFFF,
            ce_bytes: self.ce_bytes & 0x00FF_FFFF,
            ect1_bytes: self.ect1_bytes & 0x00FF_FFFF,
        }
    }
}

/// Option kind for the AccECN0 TCP option (IANA experimental allocation).
pub const OPT_KIND_ACCECN0: u8 = 0xAC;
/// Option kind for maximum segment size.
pub const OPT_KIND_MSS: u8 = 2;

/// A parsed TCP header, including the two options the stack uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number of the first payload byte.
    pub seq: u32,
    /// Cumulative acknowledgment number (valid when ACK set).
    pub ack: u32,
    /// Flag bits (including AE/CWR/ECE).
    pub flags: TcpFlags,
    /// Receive window (unscaled; the simulator uses byte windows directly).
    pub window: u16,
    /// MSS option, normally only on SYN.
    pub mss: Option<u16>,
    /// AccECN option with the receiver's byte counters.
    pub accecn: Option<AccEcnCounters>,
}

impl Default for TcpHeader {
    fn default() -> Self {
        TcpHeader {
            src_port: 0,
            dst_port: 0,
            seq: 0,
            ack: 0,
            flags: TcpFlags::new(),
            window: u16::MAX,
            mss: None,
            accecn: None,
        }
    }
}

/// Errors from parsing a TCP header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TcpError {
    /// Buffer shorter than the fixed header.
    Truncated,
    /// Data offset field invalid.
    BadOffset,
    /// Malformed option list.
    BadOption,
}

impl TcpHeader {
    /// Length of the serialised header including options and padding
    /// (a multiple of four bytes).
    pub fn header_len(&self) -> usize {
        let mut opt = 0usize;
        if self.mss.is_some() {
            opt += 4;
        }
        if self.accecn.is_some() {
            opt += 11;
        }
        20 + opt.div_ceil(4) * 4
    }

    /// Serialise into `out` and compute the real TCP checksum given the
    /// IPv4 pseudo-header and the (virtual, zero-filled) payload length.
    /// Returns the number of header bytes written.
    pub fn emit(&self, out: &mut [u8], src_ip: u32, dst_ip: u32, payload_len: usize) -> usize {
        let hlen = self.header_len();
        assert!(out.len() >= hlen, "tcp emit buffer too small");
        assert!(hlen <= 60, "tcp options too long");
        out[..hlen].fill(0);
        out[0..2].copy_from_slice(&self.src_port.to_be_bytes());
        out[2..4].copy_from_slice(&self.dst_port.to_be_bytes());
        out[4..8].copy_from_slice(&self.seq.to_be_bytes());
        out[8..12].copy_from_slice(&self.ack.to_be_bytes());
        let offset_words = (hlen / 4) as u8;
        out[12] = (offset_words << 4) | (((self.flags.0 >> 8) & 0x1) as u8);
        out[13] = (self.flags.0 & 0xFF) as u8;
        out[14..16].copy_from_slice(&self.window.to_be_bytes());
        // checksum at 16..18 stays zero for now; urgent at 18..20 unused.
        let mut p = 20;
        if let Some(mss) = self.mss {
            out[p] = OPT_KIND_MSS;
            out[p + 1] = 4;
            out[p + 2..p + 4].copy_from_slice(&mss.to_be_bytes());
            p += 4;
        }
        if let Some(acc) = self.accecn {
            let acc = acc.wrapped();
            out[p] = OPT_KIND_ACCECN0;
            out[p + 1] = 11;
            out[p + 2..p + 5].copy_from_slice(&acc.ect0_bytes.to_be_bytes()[1..4]);
            out[p + 5..p + 8].copy_from_slice(&acc.ce_bytes.to_be_bytes()[1..4]);
            out[p + 8..p + 11].copy_from_slice(&acc.ect1_bytes.to_be_bytes()[1..4]);
            p += 11;
        }
        // Pad with NOPs to the 4-byte boundary.
        while p < hlen {
            out[p] = 1;
            p += 1;
        }
        let ck = compute_checksum(&out[..hlen], src_ip, dst_ip, hlen + payload_len);
        out[16..18].copy_from_slice(&ck.to_be_bytes());
        hlen
    }

    /// Parse a TCP header from `buf`. Returns the header and its length.
    pub fn parse(buf: &[u8]) -> Result<(TcpHeader, usize), TcpError> {
        if buf.len() < 20 {
            return Err(TcpError::Truncated);
        }
        let hlen = ((buf[12] >> 4) as usize) * 4;
        if hlen < 20 || hlen > buf.len() {
            return Err(TcpError::BadOffset);
        }
        let mut hdr = TcpHeader {
            src_port: u16::from_be_bytes([buf[0], buf[1]]),
            dst_port: u16::from_be_bytes([buf[2], buf[3]]),
            seq: u32::from_be_bytes([buf[4], buf[5], buf[6], buf[7]]),
            ack: u32::from_be_bytes([buf[8], buf[9], buf[10], buf[11]]),
            flags: TcpFlags((u16::from(buf[12] & 0x1) << 8) | u16::from(buf[13])),
            window: u16::from_be_bytes([buf[14], buf[15]]),
            mss: None,
            accecn: None,
        };
        let mut p = 20;
        while p < hlen {
            match buf[p] {
                0 => break,    // End of options
                1 => p += 1,   // NOP
                OPT_KIND_MSS => {
                    if p + 4 > hlen {
                        return Err(TcpError::BadOption);
                    }
                    hdr.mss = Some(u16::from_be_bytes([buf[p + 2], buf[p + 3]]));
                    p += 4;
                }
                OPT_KIND_ACCECN0 => {
                    if p + 2 > hlen {
                        return Err(TcpError::BadOption);
                    }
                    let len = buf[p + 1] as usize;
                    if len != 11 || p + len > hlen {
                        return Err(TcpError::BadOption);
                    }
                    let f24 = |o: usize| -> u32 {
                        u32::from_be_bytes([0, buf[o], buf[o + 1], buf[o + 2]])
                    };
                    hdr.accecn = Some(AccEcnCounters {
                        ect0_bytes: f24(p + 2),
                        ce_bytes: f24(p + 5),
                        ect1_bytes: f24(p + 8),
                    });
                    p += len;
                }
                _ => {
                    // Unknown option: skip by its length byte.
                    if p + 2 > hlen {
                        return Err(TcpError::BadOption);
                    }
                    let len = buf[p + 1] as usize;
                    if len < 2 || p + len > hlen {
                        return Err(TcpError::BadOption);
                    }
                    p += len;
                }
            }
        }
        Ok((hdr, hlen))
    }
}

/// Compute the TCP checksum over the given header bytes, an IPv4
/// pseudo-header, and a virtual all-zero payload bringing the segment to
/// `tcp_len` bytes total. The checksum field inside `header` must be zero.
pub fn compute_checksum(header: &[u8], src_ip: u32, dst_ip: u32, tcp_len: usize) -> u16 {
    let mut acc = 0u32;
    acc = checksum::sum_words(acc, &src_ip.to_be_bytes());
    acc = checksum::sum_words(acc, &dst_ip.to_be_bytes());
    acc += 6; // protocol TCP
    acc += tcp_len as u32;
    acc = checksum::sum_words(acc, header);
    // Zero payload contributes nothing to the sum.
    checksum::fold(acc)
}

/// Verify a TCP segment's checksum (header bytes with the checksum field
/// as received; payload assumed zero-filled up to `tcp_len`).
pub fn verify_checksum(header: &[u8], src_ip: u32, dst_ip: u32, tcp_len: usize) -> bool {
    let mut acc = 0u32;
    acc = checksum::sum_words(acc, &src_ip.to_be_bytes());
    acc = checksum::sum_words(acc, &dst_ip.to_be_bytes());
    acc += 6;
    acc += tcp_len as u32;
    acc = checksum::sum_words(acc, header);
    checksum::fold(acc) == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TcpHeader {
        TcpHeader {
            src_port: 443,
            dst_port: 51034,
            seq: 0xDEAD_BEEF,
            ack: 0x0102_0304,
            flags: TcpFlags::new().with(TcpFlags::ACK).with(TcpFlags::ECE),
            window: 65_000,
            mss: Some(1460),
            accecn: Some(AccEcnCounters {
                ect0_bytes: 1000,
                ce_bytes: 3000,
                ect1_bytes: 2_000_000,
            }),
        }
    }

    #[test]
    fn emit_parse_roundtrip() {
        let h = sample();
        let mut buf = [0u8; 60];
        let n = h.emit(&mut buf, 0x0A000001, 0xC0A80107, 1400);
        assert_eq!(n, h.header_len());
        assert_eq!(n % 4, 0);
        let (parsed, hlen) = TcpHeader::parse(&buf[..n]).unwrap();
        assert_eq!(hlen, n);
        assert_eq!(parsed.src_port, 443);
        assert_eq!(parsed.seq, 0xDEAD_BEEF);
        assert!(parsed.flags.contains(TcpFlags::ECE));
        assert!(!parsed.flags.contains(TcpFlags::SYN));
        assert_eq!(parsed.mss, Some(1460));
        assert_eq!(parsed.accecn, Some(h.accecn.unwrap()));
    }

    #[test]
    fn checksum_verifies_and_detects_corruption() {
        let h = sample();
        let mut buf = [0u8; 60];
        let n = h.emit(&mut buf, 1, 2, 1400);
        assert!(verify_checksum(&buf[..n], 1, 2, n + 1400));
        // Wrong payload length breaks it.
        assert!(!verify_checksum(&buf[..n], 1, 2, n + 1401));
        // Bit flip breaks it.
        let mut bad = buf;
        bad[5] ^= 1;
        assert!(!verify_checksum(&bad[..n], 1, 2, n + 1400));
    }

    #[test]
    fn ace_field_roundtrip() {
        for v in 0..8u8 {
            let mut f = TcpFlags::new().with(TcpFlags::ACK);
            f.set_ace(v);
            assert_eq!(f.ace(), v, "ace {v}");
            assert!(f.contains(TcpFlags::ACK), "ack preserved");
        }
    }

    #[test]
    fn accecn_counters_wrap_to_24_bits() {
        let c = AccEcnCounters {
            ect0_bytes: 0x0100_0001,
            ce_bytes: 0xFFFF_FFFF,
            ect1_bytes: 5,
        }
        .wrapped();
        assert_eq!(c.ect0_bytes, 1);
        assert_eq!(c.ce_bytes, 0x00FF_FFFF);
        assert_eq!(c.ect1_bytes, 5);
    }

    #[test]
    fn header_len_accounts_for_options() {
        let bare = TcpHeader::default();
        assert_eq!(bare.header_len(), 20);
        let with_mss = TcpHeader {
            mss: Some(1460),
            ..TcpHeader::default()
        };
        assert_eq!(with_mss.header_len(), 24);
        let with_acc = TcpHeader {
            accecn: Some(AccEcnCounters::default()),
            ..TcpHeader::default()
        };
        assert_eq!(with_acc.header_len(), 32); // 20 + 11 padded to 32
        assert_eq!(sample().header_len(), 36); // 20 + 4 + 11 padded
    }

    #[test]
    fn parse_rejects_bad_input() {
        assert_eq!(TcpHeader::parse(&[0u8; 8]), Err(TcpError::Truncated));
        let mut buf = [0u8; 60];
        let n = sample().emit(&mut buf, 1, 2, 0);
        let mut bad = buf;
        bad[12] = 0x30; // offset 12 bytes < 20
        assert_eq!(TcpHeader::parse(&bad[..n]), Err(TcpError::BadOffset));
        // Truncate an option.
        let mut bad = buf;
        bad[21] = 0; // AccECN length 0 -> malformed
        // make offset still fine but option list broken
        bad[20] = OPT_KIND_ACCECN0;
        assert_eq!(TcpHeader::parse(&bad[..n]), Err(TcpError::BadOption));
    }

    #[test]
    fn unknown_options_are_skipped() {
        // Hand-build: 20 fixed + kind 254 len 4 + 2 data + 4 NOPs -> hlen 28.
        let mut buf = vec![0u8; 28];
        buf[12] = 7 << 4;
        buf[13] = TcpFlags::ACK as u8;
        buf[20] = 254;
        buf[21] = 4;
        buf[24] = 1;
        buf[25] = 1;
        buf[26] = 1;
        buf[27] = 1;
        let (hdr, hlen) = TcpHeader::parse(&buf).unwrap();
        assert_eq!(hlen, 28);
        assert!(hdr.flags.contains(TcpFlags::ACK));
        assert_eq!(hdr.mss, None);
    }
}

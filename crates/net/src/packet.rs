//! [`PacketBuf`]: an IPv4 datagram as the simulator carries it.
//!
//! The buffer holds the *real* IP + transport header bytes; the payload is
//! a virtual run of zeros of length `payload_len` (zeros are invisible to
//! one's-complement checksums, so every checksum here is bit-exact with a
//! zero-filled packet on a real wire). This is the unit that flows from
//! the content server through the WAN, the 5G core, L4Span, the RLC
//! queues, and over the air to the UE.

use crate::ecn::Ecn;
use crate::ipv4::{self, Ipv4Header, IPV4_HEADER_LEN};
use crate::tcp::{self, TcpHeader};
use crate::udp::{UdpHeader, UDP_HEADER_LEN};

/// Transport protocol discriminator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Protocol {
    /// TCP (IP protocol 6).
    Tcp,
    /// UDP (IP protocol 17).
    Udp,
}

impl Protocol {
    /// IP protocol number.
    pub fn number(self) -> u8 {
        match self {
            Protocol::Tcp => 6,
            Protocol::Udp => 17,
        }
    }
}

/// The classic five-tuple that uniquely identifies a flow; L4Span maps it
/// to a (UE, DRB) pair (paper §4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FiveTuple {
    /// Source IPv4 address.
    pub src_ip: u32,
    /// Destination IPv4 address.
    pub dst_ip: u32,
    /// Source transport port.
    pub src_port: u16,
    /// Destination transport port.
    pub dst_port: u16,
    /// Transport protocol.
    pub protocol: Protocol,
}

impl FiveTuple {
    /// The tuple of packets flowing the opposite way (used to reverse-map
    /// an uplink ACK to the downlink flow's DRB, Fig. 23 pseudocode).
    pub fn reversed(self) -> FiveTuple {
        FiveTuple {
            src_ip: self.dst_ip,
            dst_ip: self.src_ip,
            src_port: self.dst_port,
            dst_port: self.src_port,
            protocol: self.protocol,
        }
    }
}

/// Fixed capacity of the inline header store: an option-less IPv4 header
/// (20 bytes) plus the largest legal TCP header (60 bytes). The simulator
/// never generates anything longer, so headers live inline and packet
/// construction, cloning, and dropping never touch the allocator.
pub const HEAD_CAPACITY: usize = 80;

/// An IPv4 datagram with real header bytes and a virtual zero payload.
///
/// The header bytes live in a fixed inline array (no heap pointer), so
/// `PacketBuf` is `Copy`: every clone on the RLC segmentation/ARQ path is
/// a flat memcpy and the steady-state packet path is allocation-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketBuf {
    head: [u8; HEAD_CAPACITY],
    /// Valid prefix of `head` (IP + transport header bytes). Bytes at and
    /// beyond `head_len` are always zero, which keeps the derived
    /// `PartialEq` equivalent to comparing the valid prefixes.
    head_len: u8,
    payload_len: u16,
    /// Cached at construction; the ECN rewrite and the in-flight TCP
    /// header edit never change addresses, ports, or protocol.
    tuple: FiveTuple,
}

impl PacketBuf {
    /// Build a TCP segment. `tcp.window`, flags, options etc. come from
    /// `tcp`; checksums are computed here.
    pub fn tcp(
        src_ip: u32,
        dst_ip: u32,
        ecn: Ecn,
        identification: u16,
        tcp: &TcpHeader,
        payload_len: usize,
    ) -> PacketBuf {
        let tcp_hlen = tcp.header_len();
        let total = IPV4_HEADER_LEN + tcp_hlen + payload_len;
        assert!(total <= u16::MAX as usize, "packet too large");
        let ip = Ipv4Header {
            dscp: 0,
            ecn,
            total_len: total as u16,
            identification,
            dont_fragment: true,
            ttl: 64,
            protocol: Protocol::Tcp.number(),
            header_checksum: 0,
            src: src_ip,
            dst: dst_ip,
        };
        let head_len = IPV4_HEADER_LEN + tcp_hlen;
        let mut head = [0u8; HEAD_CAPACITY];
        ip.emit(&mut head[..IPV4_HEADER_LEN]);
        tcp.emit(&mut head[IPV4_HEADER_LEN..head_len], src_ip, dst_ip, payload_len);
        PacketBuf {
            head,
            head_len: head_len as u8,
            payload_len: payload_len as u16,
            tuple: FiveTuple {
                src_ip,
                dst_ip,
                src_port: tcp.src_port,
                dst_port: tcp.dst_port,
                protocol: Protocol::Tcp,
            },
        }
    }

    /// Build a UDP datagram carrying `payload_len` (virtual) bytes.
    pub fn udp(
        src_ip: u32,
        dst_ip: u32,
        ecn: Ecn,
        identification: u16,
        src_port: u16,
        dst_port: u16,
        payload_len: usize,
    ) -> PacketBuf {
        let total = IPV4_HEADER_LEN + UDP_HEADER_LEN + payload_len;
        assert!(total <= u16::MAX as usize, "packet too large");
        let ip = Ipv4Header {
            dscp: 0,
            ecn,
            total_len: total as u16,
            identification,
            dont_fragment: true,
            ttl: 64,
            protocol: Protocol::Udp.number(),
            header_checksum: 0,
            src: src_ip,
            dst: dst_ip,
        };
        let udp = UdpHeader {
            src_port,
            dst_port,
            length: (UDP_HEADER_LEN + payload_len) as u16,
            checksum: 0,
        };
        let head_len = IPV4_HEADER_LEN + UDP_HEADER_LEN;
        let mut head = [0u8; HEAD_CAPACITY];
        ip.emit(&mut head[..IPV4_HEADER_LEN]);
        udp.emit(&mut head[IPV4_HEADER_LEN..head_len], src_ip, dst_ip);
        PacketBuf {
            head,
            head_len: head_len as u8,
            payload_len: payload_len as u16,
            tuple: FiveTuple {
                src_ip,
                dst_ip,
                src_port,
                dst_port,
                protocol: Protocol::Udp,
            },
        }
    }

    /// Total on-the-wire length in bytes (IP header + transport header +
    /// virtual payload). This is the length every queue and rate estimator
    /// in the stack accounts in.
    pub fn wire_len(&self) -> usize {
        self.head_len as usize + self.payload_len as usize
    }

    /// Transport payload length (excludes all headers).
    pub fn payload_len(&self) -> usize {
        self.payload_len as usize
    }

    /// The raw header bytes (IP + transport).
    pub fn header_bytes(&self) -> &[u8] {
        &self.head[..self.head_len as usize]
    }

    /// Parse the IP header (panics on corruption — the simulator never
    /// corrupts headers; HARQ losses drop whole packets).
    pub fn ip(&self) -> Ipv4Header {
        Ipv4Header::parse(self.header_bytes()).expect("corrupt IP header in simulator")
    }

    /// The IP identification field, read without a full (checksum-
    /// verifying) parse — the per-packet key the harness joins metrics on.
    #[inline]
    pub fn identification(&self) -> u16 {
        u16::from_be_bytes([self.head[4], self.head[5]])
    }

    /// The ECN codepoint, read without a full parse.
    pub fn ecn(&self) -> Ecn {
        ipv4::ecn_of(&self.head)
    }

    /// Rewrite the ECN codepoint in place with incremental checksum
    /// fix-up — L4Span's downlink marking operation.
    pub fn set_ecn(&mut self, ecn: Ecn) {
        ipv4::set_ecn_in_place(&mut self.head, ecn);
    }

    /// Transport protocol, if recognised.
    pub fn protocol(&self) -> Option<Protocol> {
        match self.head[9] {
            6 => Some(Protocol::Tcp),
            17 => Some(Protocol::Udp),
            _ => None,
        }
    }

    /// The flow five-tuple (cached at construction; no parsing).
    #[inline]
    pub fn five_tuple(&self) -> Option<FiveTuple> {
        Some(self.tuple)
    }

    /// Parse the TCP header if this is a TCP segment.
    pub fn tcp_header(&self) -> Option<TcpHeader> {
        if self.tuple.protocol != Protocol::Tcp {
            return None;
        }
        TcpHeader::parse(&self.header_bytes()[IPV4_HEADER_LEN..])
            .ok()
            .map(|(h, _)| h)
    }

    /// Parse the UDP header if this is a UDP datagram.
    pub fn udp_header(&self) -> Option<UdpHeader> {
        if self.tuple.protocol != Protocol::Udp {
            return None;
        }
        UdpHeader::parse(&self.header_bytes()[IPV4_HEADER_LEN..]).ok()
    }

    /// True if this is a TCP segment with the ACK flag set — the packets
    /// L4Span's short-circuiting path inspects (Fig. 23 pseudocode).
    pub fn is_tcp_ack(&self) -> bool {
        self.tcp_header()
            .map(|h| h.flags.contains(tcp::TcpFlags::ACK))
            .unwrap_or(false)
    }

    /// Rewrite the TCP header in place via `f`, then re-emit it with fresh
    /// checksums. This is L4Span's uplink short-circuiting edit: flipping
    /// ECE/CWR bits or updating AccECN counters, then "calculates and
    /// updates the TCP checksum" (paper §5).
    ///
    /// The closure must not change options in a way that alters the header
    /// length (the RLC already accounted the packet's size); this is
    /// asserted.
    pub fn update_tcp<F: FnOnce(&mut TcpHeader)>(&mut self, f: F) {
        let ip = self.ip();
        let mut hdr = self
            .tcp_header()
            .expect("update_tcp called on a non-TCP packet");
        let old_len = hdr.header_len();
        f(&mut hdr);
        assert_eq!(
            hdr.header_len(),
            old_len,
            "TCP header length must not change in flight"
        );
        let head_len = self.head_len as usize;
        hdr.emit(
            &mut self.head[IPV4_HEADER_LEN..head_len],
            ip.src,
            ip.dst,
            self.payload_len as usize,
        );
    }

    /// Verify both checksums (test/diagnostic hook).
    pub fn checksums_valid(&self) -> bool {
        let ip_ok = Ipv4Header::parse(self.header_bytes()).is_ok();
        if !ip_ok {
            return false;
        }
        match self.protocol() {
            Some(Protocol::Tcp) => {
                let ip = self.ip();
                let t = &self.header_bytes()[IPV4_HEADER_LEN..];
                tcp::verify_checksum(t, ip.src, ip.dst, t.len() + self.payload_len as usize)
            }
            Some(Protocol::Udp) => true, // verified structurally on parse
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tcp::TcpFlags;

    fn tcp_pkt() -> PacketBuf {
        let hdr = TcpHeader {
            src_port: 443,
            dst_port: 50000,
            seq: 1000,
            ack: 0,
            flags: TcpFlags::new().with(TcpFlags::ACK),
            ..TcpHeader::default()
        };
        PacketBuf::tcp(0x0A00_0001, 0x0A00_0002, Ecn::Ect1, 7, &hdr, 1400)
    }

    #[test]
    fn tcp_packet_shape() {
        let p = tcp_pkt();
        assert_eq!(p.wire_len(), 20 + 20 + 1400);
        assert_eq!(p.protocol(), Some(Protocol::Tcp));
        assert_eq!(p.ecn(), Ecn::Ect1);
        assert!(p.is_tcp_ack());
        assert!(p.checksums_valid());
        let ft = p.five_tuple().unwrap();
        assert_eq!(ft.src_port, 443);
        assert_eq!(ft.dst_port, 50000);
        assert_eq!(ft.reversed().src_port, 50000);
        assert_eq!(ft.reversed().reversed(), ft);
    }

    #[test]
    fn udp_packet_shape() {
        let p = PacketBuf::udp(1, 2, Ecn::Ect0, 9, 5004, 6001, 1200);
        assert_eq!(p.wire_len(), 20 + 8 + 1200);
        assert_eq!(p.protocol(), Some(Protocol::Udp));
        assert!(!p.is_tcp_ack());
        let u = p.udp_header().unwrap();
        assert_eq!(u.payload_len(), 1200);
        assert!(p.checksums_valid());
    }

    #[test]
    fn ecn_rewrite_preserves_checksums() {
        let mut p = tcp_pkt();
        p.set_ecn(Ecn::Ce);
        assert_eq!(p.ecn(), Ecn::Ce);
        assert!(p.checksums_valid());
    }

    #[test]
    fn tcp_update_rewrites_flags_and_checksum() {
        let mut p = tcp_pkt();
        p.update_tcp(|h| {
            h.flags.set(TcpFlags::ECE);
            h.ack = 424242;
        });
        let h = p.tcp_header().unwrap();
        assert!(h.flags.contains(TcpFlags::ECE));
        assert_eq!(h.ack, 424242);
        assert!(p.checksums_valid());
    }

    #[test]
    #[should_panic(expected = "header length must not change")]
    fn tcp_update_rejects_length_change() {
        let mut p = tcp_pkt();
        p.update_tcp(|h| h.mss = Some(1460));
    }

    #[test]
    fn packet_buf_is_inline_and_copy() {
        // `Copy` proves clones can never allocate; the size bound keeps
        // queue entries and RLC SDU slots cache-friendly.
        fn assert_copy<T: Copy>() {}
        assert_copy::<PacketBuf>();
        assert!(
            std::mem::size_of::<PacketBuf>() <= 128,
            "PacketBuf grew past 128 bytes: {}",
            std::mem::size_of::<PacketBuf>()
        );
    }

    #[test]
    fn largest_legal_headers_fit_inline() {
        let hdr = TcpHeader {
            src_port: 1,
            dst_port: 2,
            mss: Some(1460),
            accecn: Some(crate::tcp::AccEcnCounters::default()),
            ..TcpHeader::default()
        };
        let p = PacketBuf::tcp(1, 2, Ecn::Ect1, 0, &hdr, 100);
        assert!(p.header_bytes().len() <= HEAD_CAPACITY);
        assert!(p.checksums_valid());
    }
}

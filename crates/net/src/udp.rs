//! RFC 768 UDP header. SCReAM and UDP Prague ride on UDP; for those flows
//! L4Span falls back to marking the downlink IP header (paper §4.4).

use crate::checksum;

/// Length of a UDP header.
pub const UDP_HEADER_LEN: usize = 8;

/// A parsed UDP header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct UdpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Datagram length including this header.
    pub length: u16,
    /// Checksum as read from the wire (0 while constructing).
    pub checksum: u16,
}

/// Errors from parsing a UDP header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UdpError {
    /// Buffer shorter than 8 bytes.
    Truncated,
    /// Length field shorter than the header itself.
    BadLength,
}

impl UdpHeader {
    /// Serialise into 8 bytes with a real checksum over the pseudo-header
    /// and a virtual zero payload of `length - 8` bytes.
    pub fn emit(&self, out: &mut [u8], src_ip: u32, dst_ip: u32) {
        assert!(out.len() >= UDP_HEADER_LEN, "udp emit buffer too small");
        out[0..2].copy_from_slice(&self.src_port.to_be_bytes());
        out[2..4].copy_from_slice(&self.dst_port.to_be_bytes());
        out[4..6].copy_from_slice(&self.length.to_be_bytes());
        out[6..8].copy_from_slice(&[0, 0]);
        let mut acc = 0u32;
        acc = checksum::sum_words(acc, &src_ip.to_be_bytes());
        acc = checksum::sum_words(acc, &dst_ip.to_be_bytes());
        acc += 17; // protocol UDP
        acc += u32::from(self.length);
        acc = checksum::sum_words(acc, &out[..UDP_HEADER_LEN]);
        let mut ck = checksum::fold(acc);
        if ck == 0 {
            // RFC 768: transmitted-as-zero means "no checksum"; use 0xFFFF.
            ck = 0xFFFF;
        }
        out[6..8].copy_from_slice(&ck.to_be_bytes());
    }

    /// Parse from the front of `buf`.
    pub fn parse(buf: &[u8]) -> Result<UdpHeader, UdpError> {
        if buf.len() < UDP_HEADER_LEN {
            return Err(UdpError::Truncated);
        }
        let h = UdpHeader {
            src_port: u16::from_be_bytes([buf[0], buf[1]]),
            dst_port: u16::from_be_bytes([buf[2], buf[3]]),
            length: u16::from_be_bytes([buf[4], buf[5]]),
            checksum: u16::from_be_bytes([buf[6], buf[7]]),
        };
        if (h.length as usize) < UDP_HEADER_LEN {
            return Err(UdpError::BadLength);
        }
        Ok(h)
    }

    /// Payload bytes carried after this header.
    pub fn payload_len(&self) -> usize {
        self.length as usize - UDP_HEADER_LEN
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emit_parse_roundtrip() {
        let h = UdpHeader {
            src_port: 5004,
            dst_port: 6001,
            length: 1208,
            checksum: 0,
        };
        let mut buf = [0u8; 8];
        h.emit(&mut buf, 0x0A000001, 0x0A000002);
        let p = UdpHeader::parse(&buf).unwrap();
        assert_eq!(p.src_port, 5004);
        assert_eq!(p.dst_port, 6001);
        assert_eq!(p.length, 1208);
        assert_ne!(p.checksum, 0);
        assert_eq!(p.payload_len(), 1200);
    }

    #[test]
    fn checksum_covers_pseudo_header() {
        let h = UdpHeader {
            src_port: 1,
            dst_port: 2,
            length: 100,
            checksum: 0,
        };
        let mut a = [0u8; 8];
        let mut b = [0u8; 8];
        h.emit(&mut a, 10, 20);
        h.emit(&mut b, 10, 21); // different dst ip
        assert_ne!(a[6..8], b[6..8]);
    }

    #[test]
    fn parse_rejects_bad_input() {
        assert_eq!(UdpHeader::parse(&[0u8; 4]), Err(UdpError::Truncated));
        let short = [0, 1, 0, 2, 0, 4, 0, 0]; // length 4 < 8
        assert_eq!(UdpHeader::parse(&short), Err(UdpError::BadLength));
    }
}

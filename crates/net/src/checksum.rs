//! RFC 1071 Internet checksum, plus the incremental update rule of
//! RFC 1624 that L4Span uses when it flips ECN bits in place.

/// One's-complement sum of 16-bit words over `data` folded into a `u32`
/// accumulator. An odd trailing byte is padded with zero on the right, as
/// RFC 1071 specifies.
pub fn sum_words(mut acc: u32, data: &[u8]) -> u32 {
    let mut chunks = data.chunks_exact(2);
    for w in &mut chunks {
        acc += u32::from(u16::from_be_bytes([w[0], w[1]]));
    }
    if let [last] = chunks.remainder() {
        acc += u32::from(u16::from_be_bytes([*last, 0]));
    }
    acc
}

/// Fold a 32-bit accumulator to the final 16-bit one's-complement checksum.
pub fn fold(mut acc: u32) -> u16 {
    while acc > 0xFFFF {
        acc = (acc & 0xFFFF) + (acc >> 16);
    }
    !(acc as u16)
}

/// Checksum of a byte slice (the slice's checksum field must be zeroed by
/// the caller first, per standard practice).
pub fn checksum(data: &[u8]) -> u16 {
    fold(sum_words(0, data))
}

/// Verify: summing a buffer that *includes* a correct checksum field must
/// fold to zero.
pub fn verify(data: &[u8]) -> bool {
    fold(sum_words(0, data)) == 0
}

/// RFC 1624 incremental checksum update: given the old checksum and a
/// 16-bit word that changed from `old` to `new`, return the new checksum.
///
/// HC' = ~(~HC + ~m + m')  (equation 3 of RFC 1624, avoiding the -0 bug
/// of RFC 1141).
pub fn incremental_update(old_checksum: u16, old_word: u16, new_word: u16) -> u16 {
    let mut acc = u32::from(!old_checksum);
    acc += u32::from(!old_word);
    acc += u32::from(new_word);
    fold(acc) // fold() already complements
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc1071_example() {
        // Example sequence from RFC 1071 §3: 00 01 f2 03 f4 f5 f6 f7.
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        let acc = sum_words(0, &data);
        assert_eq!(acc, 0x2ddf0);
        // Folded: 0x2ddf0 -> 0xddf2, checksum = !0xddf2 = 0x220d.
        assert_eq!(fold(acc), 0x220d);
    }

    #[test]
    fn odd_length_pads_right() {
        assert_eq!(checksum(&[0xab]), !0xab00u16);
    }

    #[test]
    fn verify_detects_corruption() {
        let mut data = vec![0x45, 0x00, 0x00, 0x28, 0x1c, 0x46, 0x40, 0x00];
        let c = checksum(&data);
        data.extend_from_slice(&c.to_be_bytes());
        assert!(verify(&data));
        data[0] ^= 0x01;
        assert!(!verify(&data));
    }

    #[test]
    fn incremental_matches_full_recompute() {
        // Flip a word in a buffer and check the incremental update agrees
        // with recomputing from scratch, for many word values.
        let mut data: Vec<u8> = (0u8..40).collect();
        for i in (0..40).step_by(2) {
            let full_old = checksum(&data);
            let old_word = u16::from_be_bytes([data[i], data[i + 1]]);
            let new_word = old_word ^ 0x0303;
            data[i..i + 2].copy_from_slice(&new_word.to_be_bytes());
            let full_new = checksum(&data);
            let inc = incremental_update(full_old, old_word, new_word);
            assert_eq!(inc, full_new, "word index {i}");
        }
    }

    #[test]
    fn incremental_identity_when_unchanged() {
        assert_eq!(incremental_update(0x1234, 0xabcd, 0xabcd), 0x1234);
    }
}

//! Packet substrate: real wire formats for the L4Span reproduction.
//!
//! L4Span's data-plane operations are byte-level header edits: it marks the
//! ECN field of downlink IPv4 headers, rewrites the ECN-Echo/CWR bits and
//! the AccECN option of uplink TCP ACKs, and recomputes the IP and TCP
//! checksums afterwards (paper §5). To reproduce those code paths honestly,
//! this crate implements the actual RFC 791 / RFC 9293 / RFC 768 wire
//! formats, RFC 1071 checksums (including incremental fix-up per RFC 1624),
//! the RFC 3168 ECN codepoints, and the AccECN TCP option from
//! draft-ietf-tcpm-accurate-ecn.
//!
//! One simulation-economy: packet *payloads* are all-zero and therefore
//! not materialised. A [`PacketBuf`] carries the real header bytes plus a
//! `payload_len`; because zero bytes contribute nothing to a one's
//! complement sum, the TCP/UDP checksums computed here are exactly the
//! checksums of the equivalent zero-filled packet on a real wire.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checksum;
pub mod ecn;
pub mod ipv4;
pub mod packet;
pub mod tcp;
pub mod udp;

pub use ecn::Ecn;
pub use ipv4::Ipv4Header;
pub use packet::{FiveTuple, PacketBuf, Protocol, HEAD_CAPACITY};
pub use tcp::{AccEcnCounters, TcpFlags, TcpHeader};
pub use udp::UdpHeader;

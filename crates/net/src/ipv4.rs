//! RFC 791 IPv4 header: parse, serialise, and the in-place ECN rewrite
//! (with incremental checksum fix-up) that L4Span performs on downlink
//! packets.

use crate::checksum;
use crate::ecn::Ecn;

/// Length of the option-less IPv4 header we generate.
pub const IPV4_HEADER_LEN: usize = 20;

/// A parsed IPv4 header (no options — the 5G user plane never adds any).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ipv4Header {
    /// Differentiated services codepoint (upper six bits of ToS).
    pub dscp: u8,
    /// ECN codepoint (lower two bits of ToS).
    pub ecn: Ecn,
    /// Total datagram length in bytes, header included.
    pub total_len: u16,
    /// Identification field.
    pub identification: u16,
    /// Don't-fragment flag.
    pub dont_fragment: bool,
    /// Time to live.
    pub ttl: u8,
    /// Transport protocol number (6 = TCP, 17 = UDP).
    pub protocol: u8,
    /// Header checksum as read from the wire (0 when constructing).
    pub header_checksum: u16,
    /// Source address.
    pub src: u32,
    /// Destination address.
    pub dst: u32,
}

/// Errors from parsing an IPv4 header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ipv4Error {
    /// Buffer shorter than 20 bytes.
    Truncated,
    /// Version field is not 4.
    BadVersion,
    /// IHL below 5 or header longer than buffer.
    BadIhl,
    /// Header checksum does not verify.
    BadChecksum,
}

impl Ipv4Header {
    /// Parse from the front of `buf`, verifying the checksum.
    pub fn parse(buf: &[u8]) -> Result<Ipv4Header, Ipv4Error> {
        if buf.len() < IPV4_HEADER_LEN {
            return Err(Ipv4Error::Truncated);
        }
        let version = buf[0] >> 4;
        if version != 4 {
            return Err(Ipv4Error::BadVersion);
        }
        let ihl = (buf[0] & 0x0F) as usize * 4;
        if ihl < IPV4_HEADER_LEN || ihl > buf.len() {
            return Err(Ipv4Error::BadIhl);
        }
        if !checksum::verify(&buf[..ihl]) {
            return Err(Ipv4Error::BadChecksum);
        }
        Ok(Ipv4Header {
            dscp: buf[1] >> 2,
            ecn: Ecn::from_bits(buf[1]),
            total_len: u16::from_be_bytes([buf[2], buf[3]]),
            identification: u16::from_be_bytes([buf[4], buf[5]]),
            dont_fragment: buf[6] & 0x40 != 0,
            ttl: buf[8],
            protocol: buf[9],
            header_checksum: u16::from_be_bytes([buf[10], buf[11]]),
            src: u32::from_be_bytes([buf[12], buf[13], buf[14], buf[15]]),
            dst: u32::from_be_bytes([buf[16], buf[17], buf[18], buf[19]]),
        })
    }

    /// Serialise into 20 bytes with a freshly computed checksum.
    pub fn emit(&self, out: &mut [u8]) {
        assert!(out.len() >= IPV4_HEADER_LEN, "ipv4 emit buffer too small");
        out[0] = 0x45; // version 4, IHL 5
        out[1] = (self.dscp << 2) | self.ecn.bits();
        out[2..4].copy_from_slice(&self.total_len.to_be_bytes());
        out[4..6].copy_from_slice(&self.identification.to_be_bytes());
        let flags: u16 = if self.dont_fragment { 0x4000 } else { 0 };
        out[6..8].copy_from_slice(&flags.to_be_bytes());
        out[8] = self.ttl;
        out[9] = self.protocol;
        out[10..12].copy_from_slice(&[0, 0]);
        out[12..16].copy_from_slice(&self.src.to_be_bytes());
        out[16..20].copy_from_slice(&self.dst.to_be_bytes());
        let c = checksum::checksum(&out[..IPV4_HEADER_LEN]);
        out[10..12].copy_from_slice(&c.to_be_bytes());
    }

    /// Length of the transport segment this header encapsulates.
    pub fn payload_len(&self) -> usize {
        (self.total_len as usize).saturating_sub(IPV4_HEADER_LEN)
    }
}

/// Read the ECN codepoint directly from raw header bytes.
#[inline]
pub fn ecn_of(buf: &[u8]) -> Ecn {
    Ecn::from_bits(buf[1])
}

/// Rewrite the ECN codepoint in place, fixing the header checksum with the
/// RFC 1624 incremental rule — this is the exact operation L4Span performs
/// when marking a downlink packet (paper §5: "recalculates the CRC checksum
/// on its IP header").
pub fn set_ecn_in_place(buf: &mut [u8], ecn: Ecn) {
    debug_assert!(buf.len() >= IPV4_HEADER_LEN);
    let old_word = u16::from_be_bytes([buf[0], buf[1]]);
    buf[1] = (buf[1] & !0b11) | ecn.bits();
    let new_word = u16::from_be_bytes([buf[0], buf[1]]);
    if old_word != new_word {
        let old_ck = u16::from_be_bytes([buf[10], buf[11]]);
        let new_ck = checksum::incremental_update(old_ck, old_word, new_word);
        buf[10..12].copy_from_slice(&new_ck.to_be_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Ipv4Header {
        Ipv4Header {
            dscp: 0,
            ecn: Ecn::Ect1,
            total_len: 1500,
            identification: 0x1c46,
            dont_fragment: true,
            ttl: 64,
            protocol: 6,
            header_checksum: 0,
            src: u32::from_be_bytes([10, 0, 0, 1]),
            dst: u32::from_be_bytes([192, 168, 1, 7]),
        }
    }

    #[test]
    fn emit_parse_roundtrip() {
        let h = sample();
        let mut buf = [0u8; IPV4_HEADER_LEN];
        h.emit(&mut buf);
        let parsed = Ipv4Header::parse(&buf).unwrap();
        assert_eq!(parsed.ecn, Ecn::Ect1);
        assert_eq!(parsed.total_len, 1500);
        assert_eq!(parsed.src, h.src);
        assert_eq!(parsed.dst, h.dst);
        assert_eq!(parsed.protocol, 6);
        assert!(parsed.dont_fragment);
        assert_eq!(parsed.payload_len(), 1480);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert_eq!(Ipv4Header::parse(&[0; 10]), Err(Ipv4Error::Truncated));
        let mut buf = [0u8; 20];
        sample().emit(&mut buf);
        let mut bad = buf;
        bad[0] = 0x65; // version 6
        assert_eq!(Ipv4Header::parse(&bad), Err(Ipv4Error::BadVersion));
        let mut bad = buf;
        bad[0] = 0x44; // IHL 4
        assert_eq!(Ipv4Header::parse(&bad), Err(Ipv4Error::BadIhl));
        let mut bad = buf;
        bad[8] ^= 0xFF; // corrupt TTL
        assert_eq!(Ipv4Header::parse(&bad), Err(Ipv4Error::BadChecksum));
    }

    #[test]
    fn in_place_ecn_rewrite_keeps_checksum_valid() {
        let mut buf = [0u8; IPV4_HEADER_LEN];
        sample().emit(&mut buf);
        for target in [Ecn::Ce, Ecn::Ect0, Ecn::NotEct, Ecn::Ect1] {
            set_ecn_in_place(&mut buf, target);
            let parsed = Ipv4Header::parse(&buf).expect("checksum must stay valid");
            assert_eq!(parsed.ecn, target);
        }
    }

    #[test]
    fn ecn_of_reads_codepoint() {
        let mut buf = [0u8; IPV4_HEADER_LEN];
        sample().emit(&mut buf);
        assert_eq!(ecn_of(&buf), Ecn::Ect1);
    }
}

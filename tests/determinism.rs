//! Cross-CC determinism matrix: for every congestion controller the
//! paper evaluates, the same seeded scenario must reproduce byte-for-byte,
//! and different seeds must actually change the run.
//!
//! This is the property every later scaling/perf PR leans on: if a
//! refactor perturbs event ordering or RNG stream assignment anywhere in
//! the stack, one of these fingerprints moves and the matrix fails.
//!
//! The matrix runs on the parallel scenario runner, which also pins the
//! runner's own contract: a batch fingerprints identically whether it
//! runs on one worker thread or many.

use l4span::core::HandoverPolicy;
use l4span::cc::WanLink;
use l4span::harness::{self, scenario, scenario::ChannelMix};
use l4span::sim::Duration;

/// One short congested-cell run config; the fingerprint digests every
/// simulation-derived field of the report.
fn config(cc: &str, seed: u64) -> scenario::ScenarioConfig {
    scenario::congested_cell(
        2,
        cc,
        ChannelMix::Mobile,
        16_384,
        WanLink::east(),
        scenario::l4span_default(),
        seed,
        Duration::from_secs(1),
    )
}

/// A 2-cell scenario with a genuine mid-run handover per UE: the
/// mobility path (Xn context transfer, PDCP re-establishment, marker
/// migration, interruption accounting) must be exactly as reproducible
/// as the single-cell path.
fn ho_config(cc: &str, seed: u64) -> scenario::ScenarioConfig {
    scenario::handover_cell(
        2,
        cc,
        Duration::from_millis(400),
        HandoverPolicy::MigrateState,
        scenario::l4span_default(),
        seed,
        Duration::from_secs(1),
    )
}

/// The mixed interactive-applications scenario: FramedVideo (frame OWD,
/// deadline misses, stall), RequestResponse (completion times), and Bulk
/// flows together — the QoE series join the fingerprint here.
fn apps_config(cc: &str, seed: u64) -> scenario::ScenarioConfig {
    scenario::interactive_apps_mixed(
        2,
        cc,
        scenario::l4span_default(),
        seed,
        Duration::from_secs(1),
    )
}

/// The bidirectional-call scenario: uplink data flows through SR/BSR,
/// grant allocation, UL HARQ, gNB-side reassembly, and the UE-side
/// marker — every one of those paths must reproduce byte-for-byte, on
/// any worker count.
fn bidir_config(cc: &str, seed: u64) -> scenario::ScenarioConfig {
    scenario::video_call_bidir(
        2,
        cc,
        scenario::l4span_default(),
        seed,
        Duration::from_secs(1),
    )
}

fn assert_matrix(mk: impl Fn(u64) -> scenario::ScenarioConfig, label: &str) {
    // Same seed twice plus a different seed: once through the default
    // runner (worker count = available parallelism, or pinned via
    // L4SPAN_THREADS — which is how CI exercises 1 vs N workers), and
    // once strictly sequentially.
    let batch = || vec![mk(7), mk(7), mk(8)];
    let par: Vec<String> = harness::run_batch(batch())
        .iter()
        .map(|r| r.fingerprint())
        .collect();
    let seq: Vec<String> = harness::run_batch_on(batch(), 1)
        .iter()
        .map(|r| r.fingerprint())
        .collect();
    assert_eq!(
        par[0], par[1],
        "{label}: same seed must give a byte-identical report"
    );
    assert_ne!(
        par[0], par[2],
        "{label}: a different seed must change the run"
    );
    assert_eq!(
        par, seq,
        "{label}: fingerprints must not depend on worker-thread count"
    );
}

fn assert_deterministic(cc: &str) {
    assert_matrix(|seed| config(cc, seed), cc);
}

fn assert_handover_deterministic(cc: &str) {
    assert_matrix(|seed| ho_config(cc, seed), &format!("handover/{cc}"));
}

/// The impairment pipeline (PR 9) rides dedicated derived RNG streams,
/// so its counters — and the fallback records they trigger — must be as
/// worker-invariant as everything else in the fingerprint.
fn impaired_config(cc: &str, seed: u64) -> scenario::ScenarioConfig {
    scenario::impaired_path_cell(
        2,
        cc,
        l4span::harness::ImpairmentSpec::bleaching(0.25).then_classic_hop(30e6),
        scenario::l4span_default(),
        seed,
        Duration::from_secs(1),
    )
}

#[test]
fn impaired_prague_fallback_is_deterministic() {
    assert_matrix(|seed| impaired_config("prague-fallback", seed), "impaired/prague-fallback");
}

#[test]
fn impaired_cubic_is_deterministic() {
    assert_matrix(|seed| impaired_config("cubic", seed), "impaired/cubic");
}

#[test]
fn reno_is_deterministic() {
    assert_deterministic("reno");
}

#[test]
fn cubic_is_deterministic() {
    assert_deterministic("cubic");
}

#[test]
fn prague_is_deterministic() {
    assert_deterministic("prague");
}

#[test]
fn bbr_is_deterministic() {
    assert_deterministic("bbr");
}

#[test]
fn bbr2_is_deterministic() {
    assert_deterministic("bbr2");
}

#[test]
fn handover_reno_is_deterministic() {
    assert_handover_deterministic("reno");
}

#[test]
fn handover_cubic_is_deterministic() {
    assert_handover_deterministic("cubic");
}

#[test]
fn handover_prague_is_deterministic() {
    assert_handover_deterministic("prague");
}

#[test]
fn handover_bbr_is_deterministic() {
    assert_handover_deterministic("bbr");
}

#[test]
fn handover_bbr2_is_deterministic() {
    assert_handover_deterministic("bbr2");
}

#[test]
fn apps_mixed_prague_is_deterministic() {
    assert_matrix(|seed| apps_config("prague", seed), "apps/prague");
}

#[test]
fn apps_mixed_cubic_is_deterministic() {
    assert_matrix(|seed| apps_config("cubic", seed), "apps/cubic");
}

#[test]
fn apps_mixed_bbr2_is_deterministic() {
    assert_matrix(|seed| apps_config("bbr2", seed), "apps/bbr2");
}

#[test]
fn bidir_prague_is_deterministic() {
    assert_matrix(|seed| bidir_config("prague", seed), "bidir/prague");
}

#[test]
fn bidir_cubic_is_deterministic() {
    assert_matrix(|seed| bidir_config("cubic", seed), "bidir/cubic");
}

#[test]
fn bidir_bbr2_is_deterministic() {
    assert_matrix(|seed| bidir_config("bbr2", seed), "bidir/bbr2");
}

#[test]
fn bidir_uplink_series_are_populated_and_seed_sensitive() {
    // Guard against the vacuous pass: the bidirectional fingerprints
    // above must actually be digesting uplink data.
    let r = harness::run(bidir_config("prague", 7));
    assert!(r.ul_owd_ms.iter().any(|v| !v.is_empty()));
    assert!(!r.ul_queue_series.is_empty());
}

#[test]
fn handover_cold_start_policy_is_deterministic_and_distinct() {
    // The ColdStart marker policy is its own code path through the
    // handover; it must be just as reproducible, and must not collide
    // with MigrateState's fingerprint.
    let cold = |seed| {
        scenario::handover_cell(
            2,
            "prague",
            Duration::from_millis(400),
            HandoverPolicy::ColdStart,
            scenario::l4span_default(),
            seed,
            Duration::from_secs(1),
        )
    };
    assert_matrix(cold, "handover/cold-start");
    let c = harness::run(cold(7)).fingerprint();
    let m = harness::run(ho_config("prague", 7)).fingerprint();
    assert_ne!(c, m, "policies must alter the run");
}

/// Bonded dual-connectivity flows (PR 10): leg striping, the server-side
/// reorder/join, the shared-bottleneck detector, and the FEC/ARQ ledgers
/// all join the fingerprint — and must reproduce byte-for-byte on any
/// worker count.
fn bonded_config(cc: &str, seed: u64) -> scenario::ScenarioConfig {
    scenario::xr_bonding_cell(
        4,
        cc,
        scenario::l4span_default(),
        true,
        seed,
        Duration::from_secs(1),
    )
}

#[test]
fn bonded_fec_media_is_deterministic() {
    assert_matrix(|seed| bonded_config("fec-media", seed), "bonded/fec-media");
}

#[test]
fn bonded_cubic_is_deterministic() {
    assert_matrix(|seed| bonded_config("cubic", seed), "bonded/cubic");
}

#[test]
fn bonded_xr_8ue_is_deterministic() {
    // The perf-gate canonical itself (8 devices × 2 legs): the exact
    // world whose fingerprint the acceptance bar pins must be
    // worker-invariant, not just a smaller cousin. Seed variation is
    // covered by the matrix's third run; `bonded_xr_8ue` fixes every
    // other knob by design.
    assert_matrix(
        |seed| scenario::bonded_xr_8ue(seed, Duration::from_secs(1)),
        "bonded/xr_8ue",
    );
}

#[test]
fn nada_single_leg_is_deterministic() {
    // NADA over TCP (the RFC 8698 controller without the FEC endpoint)
    // and the unbonded FEC-media path each get their own row.
    assert_matrix(
        |seed| {
            scenario::xr_bonding_cell(
                4,
                "nada",
                scenario::l4span_default(),
                false,
                seed,
                Duration::from_secs(1),
            )
        },
        "nada/single",
    );
    assert_matrix(
        |seed| {
            scenario::xr_bonding_cell(
                2,
                "fec-media",
                scenario::l4span_default(),
                false,
                seed,
                Duration::from_secs(1),
            )
        },
        "fec-media/single",
    );
}

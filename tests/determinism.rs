//! Cross-CC determinism matrix: for every congestion controller the
//! paper evaluates, the same seeded scenario must reproduce byte-for-byte,
//! and different seeds must actually change the run.
//!
//! This is the property every later scaling/perf PR leans on: if a
//! refactor perturbs event ordering or RNG stream assignment anywhere in
//! the stack, one of these fingerprints moves and the matrix fails.

use l4span::cc::WanLink;
use l4span::harness::{self, scenario, scenario::ChannelMix};
use l4span::sim::Duration;

/// One short congested-cell run; the fingerprint digests every
/// simulation-derived field of the report.
fn fingerprint(cc: &str, seed: u64) -> String {
    let cfg = scenario::congested_cell(
        2,
        cc,
        ChannelMix::Mobile,
        16_384,
        WanLink::east(),
        scenario::l4span_default(),
        seed,
        Duration::from_secs(1),
    );
    harness::run(cfg).fingerprint()
}

fn assert_deterministic(cc: &str) {
    let a = fingerprint(cc, 7);
    let b = fingerprint(cc, 7);
    assert_eq!(a, b, "{cc}: same seed must give a byte-identical report");
    let c = fingerprint(cc, 8);
    assert_ne!(a, c, "{cc}: a different seed must change the run");
}

#[test]
fn reno_is_deterministic() {
    assert_deterministic("reno");
}

#[test]
fn cubic_is_deterministic() {
    assert_deterministic("cubic");
}

#[test]
fn prague_is_deterministic() {
    assert_deterministic("prague");
}

#[test]
fn bbr_is_deterministic() {
    assert_deterministic("bbr");
}

#[test]
fn bbr2_is_deterministic() {
    assert_deterministic("bbr2");
}

//! Cross-crate integration tests: whole-stack scenarios through the
//! facade crate, checking the end-to-end behaviours the paper claims.

use l4span::cc::WanLink;
use l4span::core::{HandoverPolicy, L4SpanConfig};
use l4span::harness::app::AppProfile;
use l4span::harness::scenario::{
    congested_cell, handover_cell, impaired_path_cell, l4span_default, ChannelMix, FlowSpec,
    ScenarioConfig, TransportSpec, UeSpec,
};
use l4span::harness::{self, ImpairmentSpec, MarkerKind};
use l4span::ran::config::RlcMode;
use l4span::ran::ChannelProfile;
use l4span::sim::{Duration, Instant};

fn quick(n: usize, cc: &str, marker: MarkerKind, seed: u64) -> harness::Report {
    harness::run(congested_cell(
        n,
        cc,
        ChannelMix::Static,
        16_384,
        WanLink::east(),
        marker,
        seed,
        Duration::from_secs(4),
    ))
}

#[test]
fn identical_seeds_give_identical_runs() {
    let a = quick(2, "prague", l4span_default(), 99);
    let b = quick(2, "prague", l4span_default(), 99);
    assert_eq!(a.owd_ms, b.owd_ms, "simulation must be deterministic");
    assert_eq!(a.thr_bins, b.thr_bins);
    assert_eq!(a.total_marks, b.total_marks);
}

#[test]
fn different_seeds_differ() {
    let a = quick(2, "prague", l4span_default(), 1);
    let b = quick(2, "prague", l4span_default(), 2);
    assert_ne!(a.owd_ms, b.owd_ms);
}

#[test]
fn prague_l4span_beats_vanilla_on_delay_at_parity_throughput() {
    let off = quick(4, "prague", MarkerKind::None, 5);
    let on = quick(4, "prague", l4span_default(), 5);
    let flows: Vec<usize> = (0..4).collect();
    let owd_off = off.owd_stats_pooled(&flows).median;
    let owd_on = on.owd_stats_pooled(&flows).median;
    assert!(
        owd_on < owd_off / 2.0,
        "L4Span OWD {owd_on} vs vanilla {owd_off}"
    );
    let thr_off: f64 = flows.iter().map(|&f| off.goodput_total_mbps(f)).sum();
    let thr_on: f64 = flows.iter().map(|&f| on.goodput_total_mbps(f)).sum();
    assert!(thr_on > 0.75 * thr_off, "throughput {thr_on} vs {thr_off}");
}

#[test]
fn short_rlc_queue_drops_but_flows_survive() {
    let r = harness::run(congested_cell(
        2,
        "cubic",
        ChannelMix::Static,
        256,
        WanLink::east(),
        MarkerKind::None,
        3,
        Duration::from_secs(5),
    ));
    assert!(r.rlc_drops > 0, "256-SDU queue must tail-drop under CUBIC");
    for f in 0..2 {
        assert!(
            r.goodput_total_mbps(f) > 1.0,
            "flow {f} survived the losses: {}",
            r.goodput_total_mbps(f)
        );
    }
}

#[test]
fn rlc_um_mode_still_delivers_tcp() {
    let mut cfg = ScenarioConfig::new(17, Duration::from_secs(4));
    cfg.marker = l4span_default();
    // A UM DRB on a fading channel: HARQ exhaustion now loses SDUs for
    // good; TCP must recover via retransmission.
    cfg.ues.push(UeSpec {
        drbs: vec![(0, RlcMode::Um)],
        ..UeSpec::simple(ChannelProfile::Vehicular, 12.0)
    });
    cfg.flows.push(FlowSpec::new(
        0,
        AppProfile::bulk(),
        TransportSpec::tcp(l4span::cc::CcKind::Cubic),
        WanLink::east(),
        Instant::ZERO,
    ));
    let r = harness::run(cfg);
    assert!(
        r.goodput_total_mbps(0) > 0.5,
        "UM flow still makes progress: {}",
        r.goodput_total_mbps(0)
    );
}

#[test]
fn tcran_marker_controls_delay() {
    let off = quick(1, "cubic", MarkerKind::None, 9);
    let tcran = quick(1, "cubic", MarkerKind::TcRan { ecn: true }, 9);
    assert!(
        tcran.owd_stats(0).median < off.owd_stats(0).median / 2.0,
        "ECN-CoDel at the CU bounds the queue: {} vs {}",
        tcran.owd_stats(0).median,
        off.owd_stats(0).median
    );
}

#[test]
fn dualpi2_cu_ablation_underutilises_vs_l4span_on_fading() {
    // §6.3.1: the fixed 1 ms step cannot track a fading egress rate.
    let mk = |marker| {
        harness::run(congested_cell(
            1,
            "prague",
            ChannelMix::Vehicular,
            16_384,
            WanLink::east(),
            marker,
            21,
            Duration::from_secs(5),
        ))
    };
    let dp = mk(MarkerKind::DualPi2Cu {
        threshold: Duration::from_millis(1),
    });
    let l4 = mk(l4span_default());
    let thr_dp = dp.goodput_total_mbps(0);
    let thr_l4 = l4.goodput_total_mbps(0);
    assert!(
        thr_l4 > thr_dp,
        "L4Span must out-utilise the 1 ms step: {thr_l4} vs {thr_dp}"
    );
}

#[test]
fn short_circuit_rewrites_flow_feedback() {
    let sc_off = L4SpanConfig {
        short_circuit: false,
        ..L4SpanConfig::default()
    };
    let on = quick(1, "prague", l4span_default(), 31);
    let off = quick(1, "prague", MarkerKind::L4Span(sc_off), 31);
    // Both configurations keep the queue shallow…
    assert!(on.owd_stats(0).median < 150.0);
    assert!(off.owd_stats(0).median < 150.0);
    // …and both actually mark.
    assert!(on.total_marks > 0 && off.total_marks > 0);
}

#[test]
fn scream_call_adapts_to_the_cell() {
    let mut cfg = ScenarioConfig::new(13, Duration::from_secs(6));
    cfg.marker = l4span_default();
    for i in 0..4 {
        cfg.ues.push(UeSpec::simple(ChannelProfile::Static, 23.0));
        cfg.flows.push(FlowSpec::new(
            i,
            AppProfile::video(25.0, 0.5e6, 2.0e6, 50.0e6),
            TransportSpec::scream(),
            WanLink::east(),
            Instant::from_millis(10 * i as u64),
        ));
    }
    let r = harness::run(cfg);
    let total: f64 = (0..4).map(|f| r.goodput_total_mbps(f)).sum();
    // Four calls must share the ~40 Mbit/s cell without collapse.
    assert!(total > 10.0, "aggregate video rate {total} Mbit/s");
    assert!(total < 45.0, "cannot exceed the cell: {total}");
    for f in 0..4 {
        let rtt = l4span::sim::stats::BoxStats::from_samples(&r.rtt_ms[f]);
        assert!(rtt.median < 300.0, "flow {f} rtt median {}", rtt.median);
    }
}

#[test]
fn handover_is_lossless_for_tcp_and_interruption_is_bounded() {
    // Every CC the paper evaluates must ride out a 2-cell ping-pong: the
    // TCP byte stream survives the Xn forwarding (goodput keeps flowing
    // after every switch) and the delivery gap around each handover is
    // bounded.
    for cc in ["reno", "cubic", "prague", "bbr", "bbr2"] {
        let cfg = handover_cell(
            2,
            cc,
            Duration::from_secs(1),
            HandoverPolicy::MigrateState,
            l4span_default(),
            41,
            Duration::from_secs(4),
        );
        let r = harness::run(cfg);
        assert!(
            r.handovers.len() >= 4,
            "{cc}: both UEs ping-pong: {}",
            r.handovers.len()
        );
        for f in 0..2 {
            assert!(
                r.goodput_total_mbps(f) > 0.5,
                "{cc}: flow {f} survived handovers: {}",
                r.goodput_total_mbps(f)
            );
            // Goodput after the last handover: the stream is still live.
            let last = r.handovers.iter().map(|h| h.at).max().unwrap();
            let tail = r.goodput_mbps(f, last, Instant::ZERO + r.duration);
            assert!(tail > 0.1, "{cc}: flow {f} moves bytes post-HO: {tail}");
        }
        let gap = r.mean_interruption_ms().expect("gaps resolved");
        assert!(
            gap < 500.0,
            "{cc}: mean interruption {gap} ms must stay bounded"
        );
    }
}

#[test]
fn flow_stop_quiesces_traffic() {
    let mut cfg = ScenarioConfig::new(23, Duration::from_secs(6));
    cfg.marker = l4span_default();
    cfg.ues.push(UeSpec::simple(ChannelProfile::Static, 24.0));
    cfg.flows.push(
        FlowSpec::new(
            0,
            AppProfile::bulk(),
            TransportSpec::tcp(l4span::cc::CcKind::Prague),
            WanLink::east(),
            Instant::ZERO,
        )
        .stop_at(Instant::from_secs(2)),
    );
    let r = harness::run(cfg);
    let early = r.goodput_mbps(0, Instant::from_millis(500), Instant::from_secs(2));
    let late = r.goodput_mbps(0, Instant::from_secs(4), Instant::from_secs(6));
    assert!(early > 5.0, "flow ran before stop: {early}");
    assert!(late < 0.5, "flow quiesced after stop: {late}");
}

#[test]
fn l4s_and_classic_coexist_on_separate_drbs_of_one_ue() {
    let mut cfg = ScenarioConfig::new(37, Duration::from_secs(6));
    cfg.marker = l4span_default();
    cfg.ues.push(UeSpec {
        drbs: vec![(0, RlcMode::Am), (1, RlcMode::Am)],
        ..UeSpec::simple(ChannelProfile::Static, 24.0)
    });
    for (i, cc) in ["prague", "cubic"].iter().enumerate() {
        cfg.flows.push(
            FlowSpec::new(
                0,
                AppProfile::bulk(),
                TransportSpec::tcp_named(cc).expect("known cc"),
                WanLink::east(),
                Instant::from_millis(i as u64 * 20),
            )
            .on_drb(i as u8),
        );
    }
    let r = harness::run(cfg);
    let prague = r.goodput_total_mbps(0);
    let cubic = r.goodput_total_mbps(1);
    assert!(prague > 3.0, "prague share {prague}");
    assert!(cubic > 3.0, "cubic share {cubic}");
    // The Prague DRB keeps a lower delay than the classic one.
    assert!(
        r.owd_stats(0).median <= r.owd_stats(1).median + 1.0,
        "prague {} vs cubic {}",
        r.owd_stats(0).median,
        r.owd_stats(1).median
    );
}

/// A path that bleaches every ECT mark erases the sender's AccECN
/// feedback: fallback-enabled Prague must notice (reason "bleached")
/// and keep delivering, while vanilla Prague records nothing.
#[test]
fn prague_falls_back_on_a_fully_bleached_path() {
    let run = |cc: &str| {
        harness::run(impaired_path_cell(
            1,
            cc,
            ImpairmentSpec::bleaching(1.0),
            l4span_default(),
            21,
            Duration::from_secs(4),
        ))
    };
    let r = run("prague-fallback");
    assert!(
        !r.fallbacks.is_empty(),
        "bleached feedback must trip the detector"
    );
    assert_eq!(r.fallbacks[0].reason, "bleached");
    assert_eq!(r.fallbacks[0].flow, 0);
    let c = r.impairment.expect("pipeline counters in the report");
    assert!(c.bleached > 0, "the stage actually bleached packets");
    assert!(
        r.goodput_total_mbps(0) > 1.0,
        "the fallen-back flow still delivers: {}",
        r.goodput_total_mbps(0)
    );
    let v = run("prague");
    assert!(v.fallbacks.is_empty(), "vanilla prague records no fallback");
}

/// Prague (flow 0) and CUBIC (flow 1) sharing one RFC 3168 classic
/// single-queue hop — the Briscoe coexistence hazard.
fn classic_hop_coexist(prague: &str, secs: u64) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::new(1, Duration::from_secs(secs));
    cfg.marker = l4span_default();
    // Below the ~38 Mbit/s the cell carries at this SNR, so the hop —
    // and its classic marking — is the bottleneck.
    cfg.impairment = Some(ImpairmentSpec::classic_hop(20e6));
    for (i, cc) in [prague, "cubic"].into_iter().enumerate() {
        cfg.ues.push(UeSpec::simple(ChannelProfile::Static, 26.0));
        cfg.flows.push(FlowSpec::new(
            i,
            AppProfile::bulk(),
            TransportSpec::tcp_named(cc).expect("known cc"),
            WanLink::east(),
            Instant::from_millis(10 * i as u64),
        ));
    }
    cfg
}

/// The tentpole's coexistence story end-to-end: the classic queue marks
/// ECT(1) like ECT(0), vanilla Prague reads those deep-queue marks as
/// L4S signals and starves CUBIC; fallback-enabled Prague detects the
/// classic pattern (CE paired with classic-scale queueing delay),
/// switches to Reno-friendly dynamics, and gives CUBIC its share back.
#[test]
fn prague_fallback_stops_starving_cubic_in_the_shared_classic_queue() {
    let secs = 10;
    let vanilla = harness::run(classic_hop_coexist("prague", secs));
    let fb = harness::run(classic_hop_coexist("prague-fallback", secs));

    assert!(vanilla.fallbacks.is_empty(), "vanilla prague cannot fall back");
    assert_eq!(fb.fallbacks.len(), 1, "exactly one fallback: {:?}", fb.fallbacks);
    assert_eq!(fb.fallbacks[0].reason, "classic-ecn");
    assert_eq!(fb.fallbacks[0].flow, 0);
    assert!(
        fb.fallbacks[0].at_ms < (secs * 1000 - 2000) as f64,
        "fallback must fire with run left to repair: {:?}",
        fb.fallbacks[0]
    );
    // Vanilla starves cubic outright; the whole-run share improves.
    let v_ratio = vanilla.goodput_total_mbps(0) / vanilla.goodput_total_mbps(1).max(0.01);
    assert!(v_ratio > 2.0, "vanilla prague dominates: ratio {v_ratio:.2}");
    assert!(
        fb.goodput_total_mbps(1) > vanilla.goodput_total_mbps(1),
        "cubic's share improves under fallback: {:.2} vs {:.2}",
        fb.goodput_total_mbps(1),
        vanilla.goodput_total_mbps(1)
    );
    // After the fallback fires, the throughput ratio in the same window
    // must be decisively fairer than vanilla's.
    let from = Instant::from_millis(fb.fallbacks[0].at_ms as u64 + 500);
    let to = Instant::from_secs(secs);
    let tail = |r: &harness::Report| {
        r.goodput_mbps(0, from, to) / r.goodput_mbps(1, from, to).max(0.01)
    };
    let (v_tail, fb_tail) = (tail(&vanilla), tail(&fb));
    assert!(
        fb_tail < v_tail / 2.0,
        "post-fallback ratio {fb_tail:.2} vs vanilla {v_tail:.2} in the same window"
    );
}

/// The bidirectional acceptance test: `video_call_bidir` across the
/// L4S-capable and classic stacks, marker on and off. Every combination
/// must move call data in **both** directions; for prague (the scalable
/// L4S response the UE-side marker signals to), marker-on must strictly
/// improve the uplink legs' frame-deadline misses and median uplink OWD
/// over marker-off — the uplink mirror of the paper's headline claim.
#[test]
fn video_call_bidir_marker_improves_uplink_qoe() {
    use l4span::harness::scenario::video_call_bidir;

    let secs = Duration::from_secs(4);
    let mut cfgs = Vec::new();
    for cc in ["cubic", "prague", "bbr2"] {
        for marker in [MarkerKind::None, l4span_default()] {
            cfgs.push(video_call_bidir(3, cc, marker, 11, secs));
        }
    }
    let reports = harness::run_batch(cfgs);
    let ul: Vec<usize> = (0..6).filter(|f| f % 2 == 1).collect();
    let dl: Vec<usize> = (0..6).filter(|f| f % 2 == 0).collect();
    let miss = |r: &harness::Report| {
        let generated: u64 = ul.iter().map(|&f| r.frames_generated[f]).sum();
        let missed: u64 = ul.iter().map(|&f| r.frames_missed[f]).sum();
        missed as f64 / generated.max(1) as f64
    };
    for (k, cc) in ["cubic", "prague", "bbr2"].iter().enumerate() {
        for (r, m) in [(&reports[2 * k], "off"), (&reports[2 * k + 1], "on")] {
            // Both directions carried real call traffic in every cell.
            for &f in dl.iter().chain(&ul) {
                assert!(
                    r.frames_delivered[f] > 30,
                    "{cc}/marker-{m} flow {f}: only {} frames delivered",
                    r.frames_delivered[f]
                );
            }
            assert!(
                r.ul_owd_stats_pooled(&ul).n > 100,
                "{cc}/marker-{m}: uplink OWD samples missing"
            );
        }
    }
    // Prague, marker on vs off: strictly better uplink QoE.
    let (off, on) = (&reports[2], &reports[3]);
    let (miss_off, miss_on) = (miss(off), miss(on));
    assert!(
        miss_on < miss_off,
        "prague uplink deadline misses must strictly improve: {miss_on:.3} vs {miss_off:.3}"
    );
    let owd_off = off.ul_owd_stats_pooled(&ul).median;
    let owd_on = on.ul_owd_stats_pooled(&ul).median;
    assert!(
        owd_on < owd_off,
        "prague median uplink OWD must strictly improve: {owd_on:.1} vs {owd_off:.1} ms"
    );
    // And not marginally: the UE-side marker keeps the uplink queue near
    // its sojourn target instead of seconds-deep bufferbloat.
    assert!(
        owd_on < owd_off / 4.0,
        "expected a decisive uplink OWD cut: {owd_on:.1} vs {owd_off:.1} ms"
    );
    assert!(
        on.ul_marks > 0,
        "the UE-side uplink marker must actually mark ({} total marks)",
        on.total_marks
    );
}

#[test]
fn nada_carries_bulk_traffic() {
    // The RFC 8698 controller as a plain TCP congestion controller:
    // a sanity floor on goodput and determinism of the registry entry.
    let r = quick(2, "nada", l4span_default(), 17);
    for f in 0..2 {
        assert!(
            r.goodput_total_mbps(f) > 1.0,
            "NADA flow {f} starved: {} Mbit/s",
            r.goodput_total_mbps(f)
        );
    }
}

#[test]
fn fec_media_ledger_is_conserved_end_to_end() {
    use l4span::harness::scenario::xr_bonding_cell;
    // Unbonded FEC/ARQ media uplink through the full RAN stack.
    let r = harness::run(xr_bonding_cell(
        4,
        "fec-media",
        l4span_default(),
        false,
        11,
        Duration::from_secs(4),
    ));
    assert!(r.bonds.is_empty(), "unbonded run must report no bonds");
    assert_eq!(r.fec.len(), 4);
    for s in &r.fec {
        assert!(s.offered > 50, "flow {}: only {} offered", s.flow, s.offered);
        assert_eq!(
            s.delivered + s.repaired + s.abandoned,
            s.offered,
            "flow {}: ledger must partition exactly",
            s.flow
        );
        assert!(
            s.delivered * 2 > s.offered,
            "flow {}: most sources must arrive ({}/{})",
            s.flow,
            s.delivered,
            s.offered
        );
    }
    // The media flows adapt: uplink OWD samples and RTTs were recorded.
    let ul: Vec<usize> = (0..4).collect();
    assert!(r.ul_owd_stats_pooled(&ul).n > 100, "uplink OWD samples missing");
    assert!(r.rtt_ms.iter().any(|v| !v.is_empty()), "NADA RTT series missing");
}

#[test]
fn bonded_media_uses_both_legs() {
    use l4span::harness::scenario::bonded_xr_8ue;
    let r = harness::run(bonded_xr_8ue(5, Duration::from_secs(4)));
    assert_eq!(r.fec.len(), 8);
    assert_eq!(r.bonds.len(), 8);
    for (s, b) in r.fec.iter().zip(&r.bonds) {
        assert_eq!(
            s.delivered + s.repaired + s.abandoned,
            s.offered,
            "flow {}: ledger must partition exactly",
            s.flow
        );
        // Dual connectivity is real: both cells carried the flow.
        assert!(
            b.leg_pkts[0] > 20 && b.leg_pkts[1] > 20,
            "flow {}: legs {:?} — both must carry packets",
            b.flow,
            b.leg_pkts
        );
        assert_eq!(b.join_flushed, 0, "FEC media has no join buffer to flush");
    }
}

#[test]
fn bonded_tcp_join_restores_stream_order() {
    use l4span::harness::scenario::xr_bonding_cell;
    // Bonded CUBIC: the server-side join buffer must reorder the two
    // legs' interleavings well enough for TCP to make forward progress
    // comparable to a single leg.
    let bonded = harness::run(xr_bonding_cell(
        2,
        "cubic",
        l4span_default(),
        true,
        9,
        Duration::from_secs(4),
    ));
    let single = harness::run(xr_bonding_cell(
        2,
        "cubic",
        l4span_default(),
        false,
        9,
        Duration::from_secs(4),
    ));
    assert_eq!(bonded.bonds.len(), 2);
    for b in &bonded.bonds {
        assert!(
            b.leg_pkts[0] > 20 && b.leg_pkts[1] > 20,
            "flow {}: legs {:?} — both must carry packets",
            b.flow,
            b.leg_pkts
        );
    }
    let thr = |r: &harness::Report| -> f64 {
        (0..2).map(|f| r.goodput_total_mbps(f)).sum()
    };
    let (tb, ts) = (thr(&bonded), thr(&single));
    // 50/50 byte striping across legs of unequal quality pays an
    // in-order penalty (the join waits on the slower leg), so bonded
    // TCP lands below a single good leg — the contract here is that the
    // join keeps the stream functional, not that bonding wins.
    assert!(
        tb > 0.5 * ts,
        "bonded TCP must not collapse vs single-leg: {tb:.2} vs {ts:.2} Mbit/s"
    );
}

//! Golden-fingerprint regression corpus.
//!
//! `tests/golden_fingerprints.toml` pins a 64-bit digest of
//! [`Report::fingerprint`] for every canonical scenario × every
//! congestion controller the paper evaluates. The determinism matrix
//! (`tests/determinism.rs`) proves a run reproduces *within* a build;
//! this corpus additionally distinguishes **intentional** fingerprint
//! changes (new metrics, behaviour changes — re-bless and review the
//! diff) from **silent drift** (an RNG stream reassigned, an event
//! reordered, a float path refactored) across PRs.
//!
//! Regenerate after an intentional change with:
//!
//! ```sh
//! L4SPAN_BLESS=1 cargo test -q --test golden_fingerprints
//! ```
//!
//! and commit the rewritten TOML — the diff shows exactly which
//! scenario × CC combinations moved.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::PathBuf;

use l4span::core::HandoverPolicy;
use l4span::cc::WanLink;
use l4span::harness::{self, scenario, scenario::ChannelMix};
use l4span::sim::Duration;

/// Every congestion controller in the paper's evaluation.
const CCS: [&str; 5] = ["reno", "cubic", "prague", "bbr", "bbr2"];

/// The canonical corpus: short (1 simulated second) variants of every
/// canonical scenario family, in a fixed order. The last entry is the
/// bidirectional one; the rest are downlink-only.
fn corpus(cc: &str) -> Vec<(&'static str, scenario::ScenarioConfig)> {
    vec![
        (
            "congested_cell_2ue",
            scenario::congested_cell(
                2,
                cc,
                ChannelMix::Mobile,
                16_384,
                WanLink::east(),
                scenario::l4span_default(),
                7,
                Duration::from_secs(1),
            ),
        ),
        (
            "handover_2cell_2ue",
            scenario::handover_cell(
                2,
                cc,
                Duration::from_millis(400),
                HandoverPolicy::MigrateState,
                scenario::l4span_default(),
                7,
                Duration::from_secs(1),
            ),
        ),
        (
            "interactive_apps_mixed_2g",
            scenario::interactive_apps_mixed(
                2,
                cc,
                scenario::l4span_default(),
                7,
                Duration::from_secs(1),
            ),
        ),
        (
            "video_call_bidir_2",
            scenario::video_call_bidir(
                2,
                cc,
                scenario::l4span_default(),
                7,
                Duration::from_secs(1),
            ),
        ),
    ]
}

fn toml_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden_fingerprints.toml")
}

/// Compute every digest: scenario name → cc → digest. Runs the whole
/// grid through the parallel batch runner (fingerprints are invariant
/// to worker count — that is its contract, asserted in determinism.rs).
fn compute() -> BTreeMap<String, BTreeMap<String, String>> {
    let mut keys = Vec::new();
    let mut cfgs = Vec::new();
    for cc in CCS {
        for (name, cfg) in corpus(cc) {
            keys.push((name.to_string(), cc.to_string()));
            cfgs.push(cfg);
        }
    }
    let reports = harness::run_batch(cfgs);
    let mut out: BTreeMap<String, BTreeMap<String, String>> = BTreeMap::new();
    for ((name, cc), r) in keys.into_iter().zip(reports) {
        out.entry(name).or_default().insert(cc, r.fingerprint_digest());
    }
    out
}

fn render(table: &BTreeMap<String, BTreeMap<String, String>>) -> String {
    let mut s = String::from(
        "# Golden fingerprint digests (FNV-1a of Report::fingerprint()).\n\
         # One section per canonical scenario, one key per congestion\n\
         # controller. Regenerate intentionally with:\n\
         #   L4SPAN_BLESS=1 cargo test -q --test golden_fingerprints\n",
    );
    for (name, ccs) in table {
        let _ = write!(s, "\n[{name}]\n");
        // Emit in the paper's CC order, not alphabetical.
        for cc in CCS {
            if let Some(d) = ccs.get(cc) {
                let _ = writeln!(s, "{cc} = \"{d}\"");
            }
        }
    }
    s
}

/// Minimal parser for the exact file `render` writes (section headers
/// plus `key = "value"` lines; `#` comments ignored).
fn parse(text: &str) -> BTreeMap<String, BTreeMap<String, String>> {
    let mut out: BTreeMap<String, BTreeMap<String, String>> = BTreeMap::new();
    let mut section = String::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            section = name.to_string();
            out.entry(section.clone()).or_default();
            continue;
        }
        if let Some((k, v)) = line.split_once('=') {
            let key = k.trim().to_string();
            let val = v.trim().trim_matches('"').to_string();
            out.entry(section.clone()).or_default().insert(key, val);
        }
    }
    out
}

#[test]
fn golden_fingerprints_match_the_blessed_corpus() {
    let actual = compute();
    let path = toml_path();
    if std::env::var("L4SPAN_BLESS").is_ok_and(|v| v == "1") {
        std::fs::write(&path, render(&actual)).expect("write corpus");
        eprintln!("blessed {} — review the diff before committing", path.display());
        return;
    }
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "{} unreadable ({e}); generate it with L4SPAN_BLESS=1 \
             cargo test -q --test golden_fingerprints"
        , path.display())
    });
    let expected = parse(&text);
    let mut drift = Vec::new();
    for (name, ccs) in &actual {
        for (cc, digest) in ccs {
            match expected.get(name).and_then(|m| m.get(cc)) {
                Some(want) if want == digest => {}
                Some(want) => drift.push(format!(
                    "{name}/{cc}: fingerprint drifted ({want} → {digest})"
                )),
                None => drift.push(format!("{name}/{cc}: missing from the corpus")),
            }
        }
    }
    // Stale entries are drift too: a renamed scenario must be re-blessed.
    for (name, ccs) in &expected {
        for cc in ccs.keys() {
            if actual.get(name).and_then(|m| m.get(cc)).is_none() {
                drift.push(format!("{name}/{cc}: in the corpus but no longer produced"));
            }
        }
    }
    assert!(
        drift.is_empty(),
        "golden fingerprints drifted — if this change is intentional, \
         re-bless with L4SPAN_BLESS=1 and review the diff:\n  {}",
        drift.join("\n  ")
    );
}

#[test]
fn corpus_round_trips_through_the_parser() {
    let mut table: BTreeMap<String, BTreeMap<String, String>> = BTreeMap::new();
    for (i, cc) in CCS.iter().enumerate() {
        table
            .entry("scenario_x".into())
            .or_default()
            .insert(cc.to_string(), format!("{i:016x}"));
    }
    assert_eq!(parse(&render(&table)), table);
}

//! Shard-count invariance matrix.
//!
//! The sharding contract (PR 8): for an eligible scenario — per-cell CU
//! marker, no wired bottleneck, ≥ 2 cells — `run_sharded` must produce
//! a [`Report::fingerprint`] **byte-identical** to the classic
//! single-world run at *any* shard count, because shards exchange their
//! only cross-cell edges (Xn handovers, migrated in-flight events,
//! post-handover uplink stragglers) through deterministic slot-boundary
//! mailboxes. One shard short-circuits to the exact classic code path,
//! so equality against `shards = 1` is equality against `World::run`.

use l4span::core::HandoverPolicy;
use l4span::harness::{plan_shards, run_sharded, scenario, ScenarioConfig};
use l4span::sim::Duration;

fn digest(cfg: ScenarioConfig, shards: usize) -> String {
    run_sharded(cfg, shards).fingerprint_digest()
}

/// The canonical 2-cell handover scenario with the per-cell CU
/// deployment that makes it shardable.
fn handover_percell(cc: &str, secs: u64) -> ScenarioConfig {
    let mut cfg = scenario::handover_cell(
        4,
        cc,
        Duration::from_secs(1),
        HandoverPolicy::MigrateState,
        scenario::l4span_default(),
        7,
        Duration::from_secs(secs),
    );
    cfg.cu_per_cell = true;
    cfg
}

/// A small metro (8 cells × 3 UEs, one mover) that still exercises
/// every cross-shard mechanism: per-cell markers, cross-shard Xn
/// handover, in-flight event migration, and straggler mail.
fn metro_small(cc: &str) -> ScenarioConfig {
    scenario::metro_city(
        8,
        3,
        cc,
        scenario::l4span_default(),
        11,
        Duration::from_millis(2_600),
    )
}

#[test]
fn handover_2cell_invariant_across_shard_counts() {
    for cc in ["prague", "cubic", "bbr2"] {
        let base = digest(handover_percell(cc, 2), 1);
        for shards in [2, 4] {
            // 4 shards on 2 cells plans down to 2 — still must match.
            assert_eq!(
                digest(handover_percell(cc, 2), shards),
                base,
                "handover_2cell cc={cc} shards={shards}"
            );
        }
    }
}

#[test]
fn metro_invariant_across_shard_counts() {
    for cc in ["prague", "cubic", "bbr2"] {
        let base = digest(metro_small(cc), 1);
        for shards in [2, 4] {
            assert_eq!(
                digest(metro_small(cc), shards),
                base,
                "metro cc={cc} shards={shards}"
            );
        }
    }
}

#[test]
fn metro_canonical_short_invariant() {
    // The full 1000-UE / 50-cell canonical world, short sim: covers the
    // first four staggered handovers and the whole flow-start ramp.
    let cfg =
        || scenario::metro_1000ue_50cell("prague", 11, Duration::from_millis(400));
    assert_eq!(digest(cfg(), 4), digest(cfg(), 1), "metro_1000ue_50cell");
}

#[test]
fn parallel_epochs_match_sequential() {
    // Epochs are independent between barriers, so the thread count must
    // not leak into results. `L4SPAN_THREADS` only toggles execution
    // strategy; digests are compared across the toggle.
    std::env::set_var("L4SPAN_THREADS", "1");
    let seq = digest(handover_percell("cubic", 2), 2);
    std::env::set_var("L4SPAN_THREADS", "4");
    let par = digest(handover_percell("cubic", 2), 2);
    std::env::remove_var("L4SPAN_THREADS");
    assert_eq!(par, seq, "parallel vs sequential epochs");
}

#[test]
fn ineligible_scenarios_plan_to_one_shard() {
    let metro = metro_small("cubic");
    assert_eq!(plan_shards(&metro, 4), 4);
    assert_eq!(plan_shards(&metro, 64), 8, "capped at the cell count");
    assert_eq!(plan_shards(&metro, 1), 1);

    let mut central = metro_small("cubic");
    central.cu_per_cell = false;
    assert_eq!(plan_shards(&central, 4), 1, "central CU marker");

    let single_cell = scenario::congested_cell(
        2,
        "cubic",
        scenario::ChannelMix::Static,
        16_384,
        l4span::cc::WanLink::east(),
        scenario::l4span_default(),
        7,
        Duration::from_secs(1),
    );
    assert_eq!(plan_shards(&single_cell, 4), 1, "one cell");
}

#[test]
fn impairment_forces_the_classic_path_with_a_reason() {
    // An impairment pipeline serializes every flow through one shared
    // mid-path element, so the scenario can never shard: `run_sharded`
    // at any count must match the classic run byte-for-byte and the
    // report must say why sharding was rejected.
    let cfg = || {
        scenario::impaired_path_cell(
            2,
            "prague-fallback",
            l4span::harness::ImpairmentSpec::bleaching(0.25).then_classic_hop(30e6),
            scenario::l4span_default(),
            7,
            Duration::from_secs(1),
        )
    };
    let (n, why) = l4span::harness::plan_shards_reason(&cfg(), 4);
    assert_eq!((n, why), (1, Some("impairment pipeline")));
    let classic = l4span::harness::run(cfg());
    let sharded = run_sharded(cfg(), 4);
    assert_eq!(
        sharded.fingerprint_digest(),
        classic.fingerprint_digest(),
        "impairment → classic path at any shard count"
    );
    assert_eq!(sharded.shard_reject, Some("impairment pipeline"));
    assert!(
        classic.impairment.is_some(),
        "pipeline counters present in the report"
    );
}

#[test]
fn single_shard_is_the_classic_code_path() {
    // A central-marker scenario is ineligible: `run_sharded` at any
    // requested count must return exactly what `harness::run` returns.
    let cfg = || {
        scenario::handover_cell(
            2,
            "cubic",
            Duration::from_secs(1),
            HandoverPolicy::MigrateState,
            scenario::l4span_default(),
            7,
            Duration::from_secs(1),
        )
    };
    let classic = l4span::harness::run(cfg()).fingerprint_digest();
    assert_eq!(digest(cfg(), 4), classic, "ineligible → classic path");
    // And an eligible scenario explicitly asked to run on one shard
    // also takes it (`run_sharded(_, 1)` calls `World::run` directly).
    let classic_percell = l4span::harness::run(handover_percell("cubic", 1)).fingerprint_digest();
    assert_eq!(
        digest(handover_percell("cubic", 1), 1),
        classic_percell,
        "one shard → classic path"
    );
}


#[test]
fn bonded_flows_plan_to_one_shard_and_stay_invariant() {
    // A bonded flow spans two cells by construction, so the planner
    // must refuse to shard it — and any requested shard count must
    // still produce the classic single-world bytes.
    use l4span::harness::plan_shards_reason;
    let cfg = || scenario::bonded_xr_8ue(7, Duration::from_secs(1));
    assert_eq!(plan_shards_reason(&cfg(), 2), (1, Some("bonded flow")));
    assert_eq!(plan_shards(&cfg(), 4), 1);
    let base = digest(cfg(), 1);
    for shards in [2, 4] {
        assert_eq!(
            digest(cfg(), shards),
            base,
            "bonded_xr_8ue shards={shards}"
        );
    }
    let r = run_sharded(cfg(), 4);
    assert_eq!(r.shard_reject, Some("bonded flow"));
}

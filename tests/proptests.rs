//! Property-based tests over the core data structures and invariants,
//! spanning the net, sim, ran, and core crates.

use proptest::prelude::*;

use l4span::core::estimator::EgressEstimator;
use l4span::core::marking;
use l4span::core::profile::ProfileTable;
use l4span::net::{AccEcnCounters, Ecn, PacketBuf, TcpFlags, TcpHeader};
use l4span::ran::config::RlcMode;
use l4span::ran::rlc::{RlcRx, RlcTx};
use l4span::sim::stats::{percentile_sorted, Cdf};
use l4span::sim::{Duration, EventQueue, Instant, SimRng};

fn arb_ecn() -> impl Strategy<Value = Ecn> {
    prop_oneof![
        Just(Ecn::NotEct),
        Just(Ecn::Ect0),
        Just(Ecn::Ect1),
        Just(Ecn::Ce)
    ]
}

fn arb_flags() -> impl Strategy<Value = TcpFlags> {
    (0u16..512).prop_map(TcpFlags)
}

proptest! {
    /// TCP header emit→parse is the identity for every field we model.
    #[test]
    fn tcp_header_roundtrip(
        src_port in any::<u16>(),
        dst_port in any::<u16>(),
        seq in any::<u32>(),
        ack in any::<u32>(),
        flags in arb_flags(),
        window in any::<u16>(),
        mss in proptest::option::of(any::<u16>()),
        acc in proptest::option::of((0u32..1 << 24, 0u32..1 << 24, 0u32..1 << 24)),
        payload in 0usize..2000,
    ) {
        let hdr = TcpHeader {
            src_port, dst_port, seq, ack, flags, window,
            mss,
            accecn: acc.map(|(a, b, c)| AccEcnCounters {
                ect0_bytes: a, ce_bytes: b, ect1_bytes: c,
            }),
        };
        let mut buf = [0u8; 60];
        let n = hdr.emit(&mut buf, 1, 2, payload);
        let (parsed, len) = TcpHeader::parse(&buf[..n]).unwrap();
        prop_assert_eq!(len, n);
        prop_assert_eq!(parsed, hdr);
        prop_assert!(l4span::net::tcp::verify_checksum(&buf[..n], 1, 2, n + payload));
    }

    /// Any sequence of ECN rewrites keeps both checksums valid.
    #[test]
    fn ecn_rewrites_preserve_checksums(
        initial in arb_ecn(),
        rewrites in proptest::collection::vec(arb_ecn(), 0..8),
        payload in 0usize..1500,
    ) {
        let hdr = TcpHeader {
            src_port: 443,
            dst_port: 50_000,
            flags: TcpFlags::new().with(TcpFlags::ACK),
            ..TcpHeader::default()
        };
        let mut pkt = PacketBuf::tcp(0xDEAD, 0xBEEF, initial, 7, &hdr, payload);
        for e in rewrites {
            pkt.set_ecn(e);
            prop_assert_eq!(pkt.ecn(), e);
            prop_assert!(pkt.checksums_valid());
        }
    }

    /// The event queue pops in non-decreasing time order, FIFO at ties.
    #[test]
    fn event_queue_ordering(times in proptest::collection::vec(0u64..1000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(Instant::from_micros(t), i);
        }
        let mut last = (Instant::ZERO, 0usize);
        let mut seen = 0;
        while let Some((at, idx)) = q.pop() {
            prop_assert!(at >= last.0);
            if at == last.0 && seen > 0 {
                prop_assert!(idx > last.1, "ties must be FIFO");
            }
            last = (at, idx);
            seen += 1;
        }
        prop_assert_eq!(seen, times.len());
    }

    /// Percentiles are monotone in p and bounded by the extremes.
    #[test]
    fn percentiles_monotone(mut v in proptest::collection::vec(-1e7f64..1e7, 1..300)) {
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut last = f64::NEG_INFINITY;
        for p in [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 100.0] {
            let x = percentile_sorted(&v, p);
            prop_assert!(x >= last);
            prop_assert!(x >= v[0] && x <= v[v.len() - 1]);
            last = x;
        }
    }

    /// The CDF is a valid distribution function.
    #[test]
    fn cdf_is_monotone_to_one(v in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
        let cdf = Cdf::from_samples(&v);
        let mut last = 0.0;
        for i in -10..=10 {
            let f = cdf.fraction_at(i as f64 * 1e5);
            prop_assert!(f >= last && (0.0..=1.0).contains(&f));
            last = f;
        }
        let max = v.iter().cloned().fold(f64::MIN, f64::max);
        prop_assert_eq!(cdf.fraction_at(max), 1.0);
    }

    /// Eq. 1 is monotone in the queue size and bounded in [0, 1].
    #[test]
    fn p_l4s_monotone_in_queue(
        rate in 1e4f64..1e8,
        std in 0.0f64..1e7,
        n1 in 0usize..10_000_000,
        n2 in 0usize..10_000_000,
    ) {
        let tau = Duration::from_millis(10);
        let (lo, hi) = if n1 <= n2 { (n1, n2) } else { (n2, n1) };
        let p_lo = marking::p_l4s(lo, tau, rate, std);
        let p_hi = marking::p_l4s(hi, tau, rate, std);
        prop_assert!((0.0..=1.0).contains(&p_lo));
        prop_assert!((0.0..=1.0).contains(&p_hi));
        prop_assert!(p_hi >= p_lo - 1e-12);
    }

    /// Eq. 2 is monotone decreasing in rate and RTT, bounded in [0, 1].
    #[test]
    fn p_classic_monotone(
        mss in 100usize..9000,
        rtt_ms in 1u64..1000,
        r1 in 1e3f64..1e9,
        r2 in 1e3f64..1e9,
    ) {
        let k = 1.2247;
        let rtt = Duration::from_millis(rtt_ms);
        let (lo, hi) = if r1 <= r2 { (r1, r2) } else { (r2, r1) };
        let p_slow = marking::p_classic(mss, k, rtt, lo);
        let p_fast = marking::p_classic(mss, k, rtt, hi);
        prop_assert!((0.0..=1.0).contains(&p_slow));
        prop_assert!(p_fast <= p_slow + 1e-12);
    }

    /// Profile table conservation: queued bytes always equal ingress
    /// minus transmitted, regardless of the feedback pattern.
    #[test]
    fn profile_table_conserves_bytes(
        ops in proptest::collection::vec((1usize..2000, any::<bool>()), 1..300)
    ) {
        let mut t = ProfileTable::new();
        let mut total_in = 0usize;
        let mut total_out = 0usize;
        let mut now = Instant::ZERO;
        let mut highest: Option<u64> = None;
        for (size, feedback) in ops {
            now += Duration::from_micros(100);
            let sn = t.on_ingress(size, now);
            total_in += size;
            if feedback {
                let txed = t.on_feedback(Some(sn), None, now);
                total_out += txed.iter().map(|p| p.size).sum::<usize>();
                highest = Some(sn);
            }
            prop_assert_eq!(t.queued_bytes(), total_in - total_out);
            prop_assert_eq!(t.highest_txed(), highest);
        }
    }

    /// The egress estimator's smoothed rate never exceeds the fastest
    /// instantaneous rate nor falls below the slowest.
    #[test]
    fn estimator_rate_is_within_sample_range(
        gaps_us in proptest::collection::vec(100u64..20_000, 30..120),
        size in 200usize..2000,
    ) {
        let window = Duration::from_micros(12_450);
        let mut e = EgressEstimator::new(window);
        let mut now = Instant::ZERO;
        for g in &gaps_us {
            now += Duration::from_micros(*g);
            e.on_txed(now, size);
        }
        if let Some(r) = e.rate() {
            prop_assert!(r > 0.0);
            // Loose bound: cannot exceed everything having arrived in
            // one window.
            let upper = (gaps_us.len() * size) as f64 / window.as_secs_f64();
            prop_assert!(r <= upper + 1.0);
            let att = e.attainable_rate().unwrap();
            prop_assert!(att >= r);
        }
    }

    /// RLC AM segmentation/reassembly delivers every SDU exactly once and
    /// in order, for arbitrary pull budgets, with losses repaired by
    /// status-driven retransmission.
    #[test]
    fn rlc_am_delivers_everything_in_order(
        sdu_sizes in proptest::collection::vec(40usize..3000, 1..40),
        budgets in proptest::collection::vec(60usize..4000, 1..400),
        loss_seed in any::<u64>(),
    ) {
        let mut tx = RlcTx::new(RlcMode::Am, 1 << 16, 8);
        let mut rx = RlcRx::new(RlcMode::Am, Duration::from_millis(5));
        let mut rng = SimRng::new(loss_seed);
        let hdr = TcpHeader::default();
        let n = sdu_sizes.len() as u64;
        for (i, &sz) in sdu_sizes.iter().enumerate() {
            let pkt = PacketBuf::tcp(1, 2, Ecn::Ect1, i as u16, &hdr, sz);
            prop_assert!(tx.enqueue(i as u64, pkt, Instant::ZERO));
        }
        let mut delivered: Vec<u64> = Vec::new();
        let mut now = Instant::ZERO;
        // Drive tx/rx with random budgets and 20% segment loss until all
        // SDUs arrive (bounded iterations to catch livelock).
        for round in 0..10_000usize {
            now += Duration::from_micros(500);
            let budget = budgets[round % budgets.len()];
            let pulled = tx.pull(budget, now);
            for seg in pulled.segments {
                if rng.chance(0.2) {
                    continue; // lost transport block
                }
                for d in rx.on_segment(seg, now) {
                    delivered.push(d.sn);
                }
            }
            if let Some(status) = rx.make_status(now) {
                tx.on_status(&status, now);
            }
            if delivered.len() as u64 == n {
                break;
            }
            prop_assert!(round < 9_999, "livelock: {}/{} delivered", delivered.len(), n);
        }
        prop_assert_eq!(delivered.len() as u64, n);
        for (i, &sn) in delivered.iter().enumerate() {
            prop_assert_eq!(sn, i as u64, "strict in-order delivery");
        }
    }

    /// RLC UM with losses never delivers out of order and never
    /// duplicates, even though it may drop.
    #[test]
    fn rlc_um_never_reorders(
        n_sdus in 1usize..30,
        loss_seed in any::<u64>(),
    ) {
        let mut tx = RlcTx::new(RlcMode::Um, 1 << 16, 8);
        let mut rx = RlcRx::new(RlcMode::Um, Duration::from_millis(5));
        let mut rng = SimRng::new(loss_seed);
        let hdr = TcpHeader::default();
        for i in 0..n_sdus {
            let pkt = PacketBuf::tcp(1, 2, Ecn::Ect1, i as u16, &hdr, 1000);
            tx.enqueue(i as u64, pkt, Instant::ZERO);
        }
        let mut got = Vec::new();
        let mut now = Instant::ZERO;
        for _ in 0..2000 {
            now += Duration::from_micros(500);
            let pulled = tx.pull(1200, now);
            for seg in pulled.segments {
                if rng.chance(0.3) {
                    continue;
                }
                got.extend(rx.on_segment(seg, now).into_iter().map(|d| d.sn));
            }
            got.extend(rx.poll(now).into_iter().map(|d| d.sn));
        }
        // Strictly increasing ⇒ in order and no duplicates.
        for w in got.windows(2) {
            prop_assert!(w[1] > w[0], "order violated: {:?}", got);
        }
    }
}

proptest! {
    /// Lossless-forwarding invariant: the SDU stream reassembled at the
    /// UE is byte-identical with and without a mid-stream handover. The
    /// handover drains the source RLC entity (unacked + queued SDUs),
    /// re-enqueues the context at a fresh target entity, and
    /// re-establishes the receiver — under arbitrary SDU sizes, pull
    /// budgets, handover points, and 20% segment loss, every SDU still
    /// arrives exactly once, in order, with its exact original bytes.
    /// (The world-level five-CC counterpart lives in `tests/e2e.rs`.)
    #[test]
    fn rlc_handover_forwarding_is_lossless(
        sdu_sizes in proptest::collection::vec(40usize..2500, 1..30),
        budgets in proptest::collection::vec(100usize..3500, 1..60),
        ho_round in 0usize..40,
        loss_seed in any::<u64>(),
    ) {
        let hdr = TcpHeader::default();
        let originals: Vec<PacketBuf> = sdu_sizes
            .iter()
            .enumerate()
            .map(|(i, &sz)| PacketBuf::tcp(1, 2, Ecn::Ect1, i as u16, &hdr, sz))
            .collect();
        let n = originals.len() as u64;

        // Run the tx/rx pair to completion; at round `ho_round` (if
        // `with_ho`) migrate the transmit context to a fresh entity and
        // re-establish the receiver.
        let run = |with_ho: bool| -> Vec<(u64, PacketBuf)> {
            let mut tx = RlcTx::new(RlcMode::Am, 1 << 16, 8);
            let mut rx = RlcRx::new(RlcMode::Am, Duration::from_millis(5));
            let mut rng = SimRng::new(loss_seed);
            for (i, pkt) in originals.iter().enumerate() {
                assert!(tx.enqueue(i as u64, *pkt, Instant::ZERO));
            }
            let mut delivered: Vec<(u64, PacketBuf)> = Vec::new();
            let mut now = Instant::ZERO;
            for round in 0..10_000usize {
                if with_ho && round == ho_round {
                    // --- the handover ---
                    let fwd = tx.drain_for_handover();
                    let mut target = RlcTx::new(RlcMode::Am, 1 << 16, 8);
                    for f in fwd {
                        assert!(target.enqueue_forwarded(f, now));
                    }
                    tx = target;
                    rx.reestablish();
                }
                now += Duration::from_micros(500);
                let budget = budgets[round % budgets.len()];
                let pulled = tx.pull(budget, now);
                for seg in pulled.segments {
                    if rng.chance(0.2) {
                        continue; // lost transport block
                    }
                    for d in rx.on_segment(seg, now) {
                        delivered.push((d.sn, d.pkt));
                    }
                }
                if let Some(status) = rx.make_status(now) {
                    tx.on_status(&status, now);
                }
                if delivered.len() as u64 == n {
                    break;
                }
                assert!(round < 9_999, "livelock: {}/{}", delivered.len(), n);
            }
            delivered
        };

        let without = run(false);
        let with = run(true);
        // Byte-identical delivered stream, and both equal the original
        // SDU sequence exactly.
        prop_assert_eq!(&without, &with);
        prop_assert_eq!(with.len() as u64, n);
        for (i, (sn, pkt)) in with.iter().enumerate() {
            prop_assert_eq!(*sn, i as u64, "strict in-order delivery");
            prop_assert_eq!(pkt, &originals[i], "payload bytes survive the handover");
        }
    }
}

/// One plain segment-level check kept out of proptest: the AM path with
/// zero loss delivers with minimal rounds.
#[test]
fn rlc_am_lossless_fast_path() {
    let mut tx = RlcTx::new(RlcMode::Am, 64, 8);
    let mut rx = RlcRx::new(RlcMode::Am, Duration::from_millis(5));
    let hdr = TcpHeader::default();
    for i in 0..10u64 {
        tx.enqueue(
            i,
            PacketBuf::tcp(1, 2, Ecn::Ect1, i as u16, &hdr, 1000),
            Instant::ZERO,
        );
    }
    let mut delivered = 0;
    let mut now = Instant::ZERO;
    while delivered < 10 {
        now += Duration::from_micros(500);
        let pulled = tx.pull(3000, now);
        for seg in pulled.segments {
            delivered += rx.on_segment(seg, now).len();
        }
    }
    let st = rx.make_status(now + Duration::from_millis(10)).unwrap();
    assert_eq!(st.ack_sn, 10);
    assert!(st.nacks.is_empty());
    let recs = tx.on_status(&st, now + Duration::from_millis(11));
    assert_eq!(recs.len(), 10);
}

// ---------------------------------------------------------------------
// Application-layer determinism: every built-in `Application` impl is a
// pure state machine over (tick, delivered) inputs, so two instances of
// the same profile driven through the same schedule must produce
// byte-identical offer transcripts — the property that makes scenario
// fingerprints invariant to `L4SPAN_THREADS` at the workload layer.
// ---------------------------------------------------------------------

use l4span::harness::app::{AppProfile, Application, UnitKind};

/// One transcript row: `(tick_ns, offered_bytes, unit (end, is_frame)
/// list)`.
type OfferRow = (u64, u64, Vec<(u64, bool)>);

/// Drive an app with instant-delivery feedback until `horizon`.
fn app_transcript(
    app: &mut (dyn Application + Send),
    horizon: Instant,
) -> Vec<OfferRow> {
    let mut out = Vec::new();
    let mut offered = 0u64;
    for _ in 0..10_000 {
        let at = app.next_activity();
        if at > horizon {
            break;
        }
        let o = app.on_tick(at);
        offered += o.bytes;
        out.push((
            at.as_nanos(),
            o.bytes,
            o.units
                .iter()
                .map(|u| (u.end_byte, u.kind == UnitKind::Frame))
                .collect(),
        ));
        // Feed back a rate estimate and full delivery 1 ms later, the
        // worst case for hidden non-determinism in the think/replenish
        // paths.
        app.on_rate_estimate(5e6, at);
        app.on_delivered(offered, at + Duration::from_millis(1));
        if app.done() {
            break;
        }
    }
    out
}

fn arb_app_profile() -> impl Strategy<Value = AppProfile> {
    prop_oneof![
        proptest::option::of(1_000u64..10_000_000).prop_map(|b| match b {
            Some(n) => AppProfile::sized(n),
            None => AppProfile::bulk(),
        }),
        (10u32..60, 100u32..5_000, 0u32..40, 15u32..45).prop_map(
            |(fps, start_kbps, every, boost_tenths)| {
                let cfg = l4span::harness::app::FramedVideoCfg::new(
                    fps as f64,
                    1e5,
                    start_kbps as f64 * 1e3,
                    2e7,
                )
                .with_keyframes(every, boost_tenths as f64 / 10.0);
                AppProfile::FramedVideo(cfg)
            }
        ),
        (1u32..500, 1u64..500, proptest::option::of(0u32..10)).prop_map(
            |(resp_kb, think_ms, count)| AppProfile::request_response(
                resp_kb as u64 * 1024,
                Duration::from_millis(think_ms),
                count,
            )
        ),
        proptest::collection::vec((0u64..2_000, 0u64..100_000), 0..20).prop_map(|mut t| {
            t.sort();
            AppProfile::trace(
                t.into_iter()
                    .map(|(ms, b)| (Duration::from_millis(ms), b))
                    .collect(),
            )
        }),
    ]
}

proptest! {
    /// Two instantiations of any profile, driven identically, offer the
    /// identical byte stream — and the stream's unit boundaries are
    /// well-formed (monotone, within the offered prefix).
    #[test]
    fn application_offer_streams_are_deterministic(
        profile in arb_app_profile(),
        start_ms in 0u64..500,
    ) {
        let start = Instant::from_millis(start_ms);
        let horizon = start + Duration::from_secs(2);
        let mut a = profile.instantiate(start);
        let mut b = profile.instantiate(start);
        let ta = app_transcript(&mut *a, horizon);
        let tb = app_transcript(&mut *b, horizon);
        prop_assert_eq!(&ta, &tb, "identical transcripts for {:?}", profile);
        // Unit boundaries are monotone and never exceed offered bytes.
        let mut offered = 0u64;
        let mut last_end = 0u64;
        for (_, bytes, units) in &ta {
            offered += bytes;
            for &(end, _) in units {
                prop_assert!(end > last_end, "unit ends strictly increase");
                prop_assert!(end <= offered, "unit inside the offered prefix");
                last_end = end;
            }
        }
    }
}

// ---------------------------------------------------------------------
// Impairment pipeline conservation (PR 9): whatever stages a path is
// built from, every packet offered to the pipeline is either delivered
// out the far end, counted as dropped by exactly one stage, or still in
// a queue stage — never duplicated, never silently lost — and any
// codepoint rewrite the pipeline performed composes to a legal ECN
// lattice transition.
// ---------------------------------------------------------------------

use l4span::harness::impairment::{Impairment, ImpairmentSpec, StageOutcome, StageSpec};

fn arb_stage() -> impl Strategy<Value = StageSpec> {
    // Probabilities as permille so the strategy stays on integer ranges.
    prop_oneof![
        (0u32..=1000).prop_map(|p| StageSpec::Bleach { prob: p as f64 / 1000.0 }),
        ((0u32..=1000), 0usize..6).prop_map(|(p, k)| {
            // Every legal non-identity transition a middlebox could do.
            let (from, to) = [
                (Ecn::Ect1, Ecn::Ect0),
                (Ecn::Ect0, Ecn::Ect1),
                (Ecn::Ect1, Ecn::Ce),
                (Ecn::Ect0, Ecn::Ce),
                (Ecn::Ce, Ecn::NotEct),
                (Ecn::Ect1, Ecn::NotEct),
            ][k];
            StageSpec::Remark { from, to, prob: p as f64 / 1000.0 }
        }),
        (0u32..=1000).prop_map(|p| StageSpec::EctDrop { prob: p as f64 / 1000.0 }),
        (1e6f64..1e8).prop_map(|rate_bps| StageSpec::ClassicQueue { rate_bps }),
    ]
}

/// Push `pkt` through stages `start..`; packets that clear the last
/// stage land in `delivered`.
fn impair_feed(
    imp: &mut Impairment,
    start: usize,
    pkt: PacketBuf,
    now: Instant,
    delivered: &mut Vec<PacketBuf>,
) {
    let mut cur = pkt;
    for i in start..imp.n_stages() {
        match imp.apply(i, cur, now) {
            StageOutcome::Continue(p) => cur = p,
            StageOutcome::Dropped | StageOutcome::Queued => return,
        }
    }
    delivered.push(cur);
}

/// Poll every queue stage at `now`, feeding departures onward (a
/// departure may enter a later queue) and collecting follow-up poll
/// times into `agenda` — the world's `impair_poll` loop, inlined.
fn impair_poll_all(
    imp: &mut Impairment,
    now: Instant,
    delivered: &mut Vec<PacketBuf>,
    agenda: &mut Vec<Instant>,
) {
    for i in 0..imp.n_stages() {
        let (out, next) = imp.poll_queue(i, now);
        for p in out {
            impair_feed(imp, i + 1, p, now, delivered);
        }
        if let Some(d) = next {
            agenda.push(d);
        }
    }
}

proptest! {
    /// Impairment conservation: offered == delivered + counted drops,
    /// delivery order preserves send order per codepoint stream, no
    /// duplication, and every net codepoint change is lattice-legal.
    #[test]
    fn impairment_pipeline_conserves_packets(
        stages in proptest::collection::vec(arb_stage(), 1..5),
        arrivals in proptest::collection::vec((0u64..200_000, 0usize..4), 1..150),
        seed in any::<u64>(),
    ) {
        let spec = ImpairmentSpec { stages };
        prop_assert!(spec.validate().is_ok(), "generated stages are legal");
        let root = l4span::sim::SimRng::new(seed);
        let rngs = (0..spec.stages.len())
            .map(|k| root.derive(40_000 + k as u64))
            .collect();
        let mut imp = Impairment::new(&spec, rngs);

        let mut t_sorted = arrivals;
        t_sorted.sort();
        let hdr = TcpHeader::default();
        let mut delivered: Vec<PacketBuf> = Vec::new();
        let mut agenda: Vec<Instant> = Vec::new();
        let mut sent_ecn: Vec<Ecn> = Vec::new();
        let mut last = Instant::ZERO;
        for (k, (t_us, ecn_k)) in t_sorted.into_iter().enumerate() {
            let now = Instant::from_micros(t_us);
            // Serve any queue departures due before this arrival.
            while let Some(&t) = agenda.iter().filter(|&&t| t <= now).min() {
                agenda.retain(|&x| x != t);
                impair_poll_all(&mut imp, t, &mut delivered, &mut agenda);
            }
            last = now;
            let ecn = [Ecn::NotEct, Ecn::Ect0, Ecn::Ect1, Ecn::Ce][ecn_k];
            // seq tags the packet so delivery can be matched to its send.
            let hdr = TcpHeader { seq: k as u32, ..hdr };
            sent_ecn.push(ecn);
            impair_feed(
                &mut imp,
                0,
                PacketBuf::tcp(1, 2, ecn, 0, &hdr, 1000),
                now,
                &mut delivered,
            );
            impair_poll_all(&mut imp, now, &mut delivered, &mut agenda);
        }
        // Drain every queue stage to empty (agenda-driven; bounded).
        for round in 0..100_000usize {
            let Some(&t) = agenda.iter().min() else { break };
            agenda.retain(|&x| x != t);
            last = last.max(t);
            impair_poll_all(&mut imp, t, &mut delivered, &mut agenda);
            prop_assert!(round < 99_999, "queue drain livelock");
        }
        // Generous settle poll: nothing further may emerge.
        let n0 = delivered.len();
        impair_poll_all(
            &mut imp,
            last + Duration::from_secs(60),
            &mut delivered,
            &mut agenda,
        );
        prop_assert_eq!(delivered.len(), n0, "drain left packets queued");

        prop_assert_eq!(
            delivered.len() as u64 + imp.counters.total_dropped(),
            sent_ecn.len() as u64,
            "conservation: {} delivered, {:?}",
            delivered.len(),
            imp.counters
        );
        // No duplication, and each packet's net rewrite is lattice-legal.
        let mut seen = std::collections::HashSet::new();
        for p in &delivered {
            let tcp = p.tcp_header().expect("tcp survives");
            prop_assert!(seen.insert(tcp.seq), "duplicate delivery of {}", tcp.seq);
            let sent = sent_ecn[tcp.seq as usize];
            prop_assert!(
                sent == p.ecn() || Ecn::transition_legal(sent, p.ecn()),
                "illegal net transition {:?} -> {:?}",
                sent,
                p.ecn()
            );
        }
    }
}

proptest! {
    /// Cross-shard mailbox contract (PR 8): the coordinator's delivery
    /// order is a pure function of `(time, source shard, extraction
    /// sequence)`. Each shard's extraction sequence is deterministic —
    /// `EventQueue::drain_ordered` yields `(time, seq)` order with
    /// same-instant FIFO — and sorting the pooled envelopes by that
    /// triple recovers a single total order no matter how the
    /// per-shard outboxes were interleaved when collected.
    #[test]
    fn mailbox_drain_order_is_pure(
        outboxes in proptest::collection::vec(
            proptest::collection::vec(0u64..5_000, 0..24), 1..5),
        swaps in proptest::collection::vec((0usize..96, 0usize..96), 0..96),
    ) {
        let mut envelopes = Vec::new();
        for (s, times) in outboxes.iter().enumerate() {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.schedule(Instant::ZERO + Duration::from_nanos(t), i);
            }
            let drained = q.drain_ordered();
            // Non-decreasing time; same-instant envelopes keep their
            // scheduling (FIFO) order.
            for w in drained.windows(2) {
                prop_assert!(w[0].0 <= w[1].0, "drain is time-ordered");
                if w[0].0 == w[1].0 {
                    prop_assert!(w[0].1 < w[1].1, "same-instant FIFO");
                }
            }
            for (k, (at, id)) in drained.into_iter().enumerate() {
                envelopes.push((at, s, k, id));
            }
        }
        // Any collection interleaving sorts to the same delivery order.
        let mut a = envelopes.clone();
        let mut b = envelopes;
        for &(i, j) in &swaps {
            if i < b.len() && j < b.len() {
                b.swap(i, j);
            }
        }
        a.sort_by_key(|&(at, s, k, _)| (at, s, k));
        b.sort_by_key(|&(at, s, k, _)| (at, s, k));
        prop_assert_eq!(&a, &b);
        // The key is strictly totally ordered: no two envelopes tie.
        for w in a.windows(2) {
            prop_assert!(
                (w[0].0, w[0].1, w[0].2) < (w[1].0, w[1].1, w[1].2),
                "delivery key is unique"
            );
        }
    }
}

proptest! {
    /// FEC/ARQ ledger conservation (PR 10): whatever the loss pattern —
    /// source losses, repair losses, duplicate arrivals, lost
    /// retransmissions — closing the stream partitions every offered
    /// sequence into exactly one of delivered / repaired / abandoned.
    #[test]
    fn fec_ledger_is_conserved_under_arbitrary_loss(
        lost in proptest::collection::vec(any::<bool>(), 1..200),
        repair_lost in any::<u64>(),
        dup_every in 1u64..7,
    ) {
        use l4span::cc::fec::{FecReceiverCore, FecSenderCore, NackVerdict};
        let deadline = Duration::from_millis(100);
        let mut s = FecSenderCore::new(deadline);
        let mut r = FecReceiverCore::new(deadline);
        let mut t = Instant::ZERO;
        let mut nacks = Vec::new();
        let mut repairs_sent = 0u64;
        for &l in &lost {
            let seq = s.source(t);
            if !l {
                r.on_source(seq, t);
                if seq.is_multiple_of(dup_every) {
                    // The network duplicated the packet.
                    r.on_source(seq, t);
                }
            }
            if let Some((base, end)) = s.repair_due() {
                repairs_sent += 1;
                if (repair_lost >> (repairs_sent % 64)) & 1 == 0 {
                    r.on_repair(base, end, t);
                }
            }
            t += Duration::from_millis(2);
            nacks.clear();
            r.poll_nacks(t, &mut nacks);
            for &seq in &nacks {
                // A third of the granted retransmissions get lost too.
                if s.on_nack(seq, t) == NackVerdict::Retx && seq % 3 != 0 {
                    r.on_source(seq, t);
                }
            }
        }
        let offered = s.offered;
        prop_assert_eq!(offered, lost.len() as u64);
        r.close(offered, t + Duration::from_secs(2));
        prop_assert_eq!(
            r.delivered + r.repaired + r.abandoned,
            offered,
            "partition must be exact: {} + {} + {} != {} (dups {})",
            r.delivered, r.repaired, r.abandoned, offered, r.duplicates
        );
        if lost.iter().all(|&l| !l) {
            prop_assert_eq!(r.abandoned, 0, "nothing to abandon without loss");
            prop_assert_eq!(r.delivered, offered);
        }
    }
}

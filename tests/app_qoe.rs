//! The application-layer redesign's contract tests:
//!
//! 1. **Shim equivalence** — every old `TrafficKind` variant, routed
//!    through the deprecated `FlowSpec::from_traffic` shim, produces a
//!    byte-identical `Report::fingerprint()` to the equivalent
//!    `(AppProfile, TransportSpec)` construction. This is what lets the
//!    figure bins and determinism matrix keep their fingerprints across
//!    the API split.
//! 2. **QoE determinism** — the new application-level metrics (frame
//!    OWD, deadline-miss rate, stall time, request completion times)
//!    are populated and byte-identical across 1 vs 4 worker threads.
//! 3. **End-to-end QoE behaviour** — the metrics move the way the paper
//!    says they should (L4Span cuts frame delay misses for video over
//!    a congested cell).

use l4span::cc::{CcKind, WanLink};
use l4span::harness::app::AppProfile;
use l4span::harness::scenario::{
    interactive_apps_mixed, l4span_default, FlowSpec, ScenarioConfig, TransportSpec,
};
#[allow(deprecated)]
use l4span::harness::scenario::TrafficKind;
use l4span::harness::{self, MarkerKind, UeSpec};
use l4span::ran::ChannelProfile;
use l4span::sim::{Duration, Instant};

fn base(seed: u64) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::new(seed, Duration::from_secs(2));
    cfg.marker = l4span_default();
    for i in 0..2 {
        cfg.ues
            .push(UeSpec::simple(ChannelProfile::Static, 21.0 + i as f64));
    }
    cfg
}

/// Build the same two-UE scenario twice — once through the deprecated
/// `TrafficKind` shim, once with the new API — and assert byte-identical
/// reports.
#[allow(deprecated)]
fn assert_shim_equivalent(
    label: &str,
    old: TrafficKind,
    app: AppProfile,
    transport: TransportSpec,
) {
    let mut via_shim = base(42);
    let mut via_new = base(42);
    for i in 0..2 {
        via_shim.flows.push(FlowSpec::from_traffic(
            i,
            0,
            old.clone(),
            WanLink::east(),
            Instant::from_millis(10 * i as u64),
            None,
        ));
        via_new.flows.push(FlowSpec::new(
            i,
            app.clone(),
            transport.clone(),
            WanLink::east(),
            Instant::from_millis(10 * i as u64),
        ));
    }
    let a = harness::run(via_shim);
    let b = harness::run(via_new);
    assert_eq!(
        a.fingerprint(),
        b.fingerprint(),
        "{label}: the TrafficKind shim must lower byte-identically"
    );
}

#[test]
#[allow(deprecated)]
fn tcp_greedy_shim_is_byte_identical() {
    assert_shim_equivalent(
        "tcp/greedy",
        TrafficKind::Tcp {
            cc: "cubic".into(),
            app_limit: None,
        },
        AppProfile::bulk(),
        TransportSpec::tcp(CcKind::Cubic),
    );
}

#[test]
#[allow(deprecated)]
fn tcp_sized_shim_is_byte_identical() {
    assert_shim_equivalent(
        "tcp/sized",
        TrafficKind::Tcp {
            cc: "prague".into(),
            app_limit: Some(200_000),
        },
        AppProfile::sized(200_000),
        TransportSpec::tcp(CcKind::Prague),
    );
}

#[test]
#[allow(deprecated)]
fn scream_shim_is_byte_identical() {
    assert_shim_equivalent(
        "scream",
        TrafficKind::Scream {
            min_bps: 0.5e6,
            start_bps: 2.0e6,
            max_bps: 20.0e6,
            fps: 25.0,
        },
        AppProfile::video(25.0, 0.5e6, 2.0e6, 20.0e6),
        TransportSpec::scream(),
    );
}

#[test]
#[allow(deprecated)]
fn udp_prague_shim_is_byte_identical() {
    assert_shim_equivalent(
        "udp-prague",
        TrafficKind::UdpPrague {
            min_rate: 6.25e4,
            start_rate: 2.5e5,
            max_rate: 2.5e6,
        },
        AppProfile::bulk(),
        TransportSpec::udp_prague(6.25e4, 2.5e5, 2.5e6),
    );
}

#[test]
fn qoe_metrics_are_deterministic_across_worker_counts() {
    let mk = |seed| interactive_apps_mixed(2, "prague", l4span_default(), seed, Duration::from_secs(2));
    let batch = || vec![mk(7), mk(7), mk(9)];
    let seq = harness::run_batch_on(batch(), 1);
    let par = harness::run_batch_on(batch(), 4);
    for (a, b) in seq.iter().zip(&par) {
        assert_eq!(
            a.fingerprint(),
            b.fingerprint(),
            "QoE series must not depend on worker count"
        );
    }
    assert_eq!(seq[0].fingerprint(), seq[1].fingerprint(), "same seed, same run");
    assert_ne!(seq[0].fingerprint(), seq[2].fingerprint(), "seeds differ");
    // The scenario must actually exercise every QoE channel: video flows
    // (0, 3) frames; web flows (1, 4) request completions.
    let r = &seq[0];
    for f in [0usize, 3] {
        assert!(r.frames_generated[f] > 30, "flow {f} generated frames");
        assert!(!r.frame_owd_ms[f].is_empty(), "flow {f} delivered frames");
        assert!(r.frame_deadline_miss_rate(f).is_some());
    }
    for f in [1usize, 4] {
        assert!(!r.request_ms[f].is_empty(), "flow {f} completed requests");
    }
    // Bulk flows carry no app-level units.
    for f in [2usize, 5] {
        assert_eq!(r.frames_generated[f], 0);
        assert!(r.request_ms[f].is_empty());
    }
}

#[test]
fn l4span_improves_video_qoe_on_a_congested_cell() {
    let mk = |marker: MarkerKind| {
        let mut cfg = ScenarioConfig::new(31, Duration::from_secs(4));
        cfg.marker = marker;
        // Two video calls + two greedy downloads keep the cell loaded.
        for i in 0..4 {
            cfg.ues
                .push(UeSpec::simple(ChannelProfile::Static, 22.0 + i as f64));
            let app = if i < 2 {
                AppProfile::video(30.0, 0.5e6, 2.0e6, 8.0e6)
            } else {
                AppProfile::bulk()
            };
            cfg.flows.push(FlowSpec::new(
                i,
                app,
                TransportSpec::tcp(CcKind::Prague),
                WanLink::east(),
                Instant::from_millis(10 * i as u64),
            ));
        }
        harness::run(cfg)
    };
    let off = mk(MarkerKind::None);
    let on = mk(l4span_default());
    let owd_off = off.frame_owd_stats_pooled(&[0, 1]).median;
    let owd_on = on.frame_owd_stats_pooled(&[0, 1]).median;
    assert!(
        owd_on < owd_off,
        "L4Span must cut frame OWD: {owd_on} vs {owd_off} ms"
    );
    let miss_off = off.frame_deadline_miss_rate(0).unwrap();
    let miss_on = on.frame_deadline_miss_rate(0).unwrap();
    assert!(
        miss_on <= miss_off,
        "deadline misses must not worsen: {miss_on} vs {miss_off}"
    );
    assert!(
        on.stall_time_ms(0) <= off.stall_time_ms(0),
        "stall time must not worsen: {} vs {}",
        on.stall_time_ms(0),
        off.stall_time_ms(0)
    );
}

#[test]
fn request_response_session_completes_and_times_requests() {
    let mut cfg = ScenarioConfig::new(17, Duration::from_secs(3));
    cfg.marker = l4span_default();
    cfg.ues.push(UeSpec::simple(ChannelProfile::Static, 24.0));
    cfg.flows.push(FlowSpec::new(
        0,
        AppProfile::request_response(100_000, Duration::from_millis(100), Some(5)),
        TransportSpec::tcp(CcKind::Cubic),
        WanLink::east(),
        Instant::ZERO,
    ));
    let r = harness::run(cfg);
    assert_eq!(r.request_ms[0].len(), 5, "all five responses completed");
    // Each 100 kB response takes at least the propagation delay and at
    // most a sane bound on an uncongested cell.
    assert!(r.request_ms[0].iter().all(|&ms| ms > 10.0 && ms < 1500.0));
    // The session is finite: the flow finished and recorded its time.
    assert!(r.finish_ms[0].is_some(), "finished_at recorded");
}

#[test]
fn trace_replay_delivers_exactly_the_trace_bytes() {
    let mut cfg = ScenarioConfig::new(19, Duration::from_secs(3));
    cfg.marker = l4span_default();
    cfg.ues.push(UeSpec::simple(ChannelProfile::Static, 24.0));
    let trace = vec![
        (Duration::from_millis(100), 40_000u64),
        (Duration::from_millis(600), 80_000),
        (Duration::from_millis(1_200), 40_000),
    ];
    cfg.flows.push(FlowSpec::new(
        0,
        AppProfile::trace(trace),
        TransportSpec::tcp(CcKind::Prague),
        WanLink::east(),
        Instant::ZERO,
    ));
    let r = harness::run(cfg);
    let delivered: u64 = r.thr_bins[0].iter().sum();
    assert_eq!(delivered, 160_000, "exactly the trace's bytes arrive");
    assert_eq!(r.request_ms[0].len(), 3, "each burst timed");
    assert!(r.finish_ms[0].is_some());
}

#[test]
fn framed_video_over_tcp_adapts_encoder_to_transport() {
    // A narrow cell cannot carry the encoder's 8 Mbit/s cap; the rate
    // hook must pull the target down instead of stalling every frame.
    let mut cfg = ScenarioConfig::new(23, Duration::from_secs(4));
    cfg.marker = l4span_default();
    cfg.cell.n_prbs = 24; // narrow cell
    cfg.ues.push(UeSpec::simple(ChannelProfile::Static, 14.0));
    cfg.flows.push(FlowSpec::new(
        0,
        AppProfile::video(30.0, 0.3e6, 4.0e6, 8.0e6),
        TransportSpec::tcp(CcKind::Prague),
        WanLink::east(),
        Instant::ZERO,
    ));
    let r = harness::run(cfg);
    assert!(r.frames_generated[0] > 100, "{}", r.frames_generated[0]);
    let miss = r.frame_deadline_miss_rate(0).unwrap();
    assert!(
        miss < 0.9,
        "adaptation keeps most frames inside some deadline: {miss}"
    );
    assert!(r.goodput_total_mbps(0) > 0.2, "{}", r.goodput_total_mbps(0));
}

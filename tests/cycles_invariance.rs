//! Cycle-accounting invariance: enabling `measure_cycles` must not
//! change simulation behaviour in any observable way.
//!
//! The `CycleScope` spans in the harness read the OS clock, but nothing
//! they record feeds back into the event stream, RNG draws, or metrics
//! that enter [`Report::fingerprint`]. This test is the promised
//! assertion behind the "zero behavioural footprint" claim in
//! `l4span_sim::cycles` and the `fig_breakdown` tool: the fingerprint
//! digest — which folds in every event count, metric vector, and final
//! queue state — is bit-identical with instrumentation on and off.

use l4span::cc::WanLink;
use l4span::harness::{self, scenario, scenario::ChannelMix};
use l4span::sim::Duration;

fn base_cfg() -> scenario::ScenarioConfig {
    scenario::congested_cell(
        4,
        "prague",
        ChannelMix::Mobile,
        16_384,
        WanLink::east(),
        scenario::l4span_default(),
        7,
        Duration::from_secs(1),
    )
}

#[test]
fn fingerprint_identical_with_cycles_on_and_off() {
    let off = harness::run(base_cfg());
    let mut cfg = base_cfg();
    cfg.measure_cycles = true;
    let on = harness::run(cfg);
    assert_eq!(
        off.fingerprint_digest(),
        on.fingerprint_digest(),
        "cycle accounting must not perturb simulation behaviour"
    );
}

#[test]
fn cycles_report_empty_when_disabled_and_populated_when_enabled() {
    let off = harness::run(base_cfg());
    assert!(
        off.cycles.iter().all(|s| s.calls == 0),
        "disabled scopes must record nothing"
    );
    let mut cfg = base_cfg();
    cfg.measure_cycles = true;
    let on = harness::run(cfg);
    let total_calls: u64 = on.cycles.iter().map(|s| s.calls).sum();
    assert!(total_calls > 0, "enabled scopes must record spans");
    // The per-slot subsystems must have fired in a congested scenario.
    for label in ["gnb", "marker", "transport", "event_queue"] {
        let stat = on
            .cycles
            .iter()
            .find(|s| s.label == label)
            .unwrap_or_else(|| panic!("missing cycle label {label}"));
        assert!(stat.calls > 0, "{label} should have recorded calls");
    }
}

//! Allocation-freedom proof for the steady-state downlink packet path.
//!
//! PR 2's claim is that a simulated packet, once the world is warm,
//! costs **zero heap allocations** end to end on the downlink data path:
//! construction (inline `[u8; 80]` header store), the L4Span ECN / TCP
//! rewrites (in-place), the RLC clone into segments (`PacketBuf: Copy`),
//! and the event-queue schedule/pop cycle (pooled boxes, pre-sized
//! heap). This test installs a counting global allocator and asserts
//! exactly that, operation by operation.
//!
//! Everything runs in ONE `#[test]` because the counter is process-wide:
//! parallel test threads would bleed counts into each other.

use l4span::net::{Ecn, PacketBuf, TcpFlags, TcpHeader};
use l4span::ran::config::RlcMode;
use l4span::ran::rlc::{RlcTx, Segment, TxRecord};
use l4span::sim::{Duration, EventQueue, Instant};
use l4span_alloctrack::CountingAlloc;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

/// Allocation requests made while running `f`.
fn allocs_during<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = ALLOC.count();
    let r = f();
    (ALLOC.count() - before, r)
}

fn data_packet(ident: u16, payload: usize) -> PacketBuf {
    let hdr = TcpHeader {
        src_port: 443,
        dst_port: 50_000,
        seq: 1000,
        ack: 7,
        flags: TcpFlags::new().with(TcpFlags::ACK),
        ..TcpHeader::default()
    };
    PacketBuf::tcp(0x0A00_0001, 0xC0A8_0001, Ecn::Ect1, ident, &hdr, payload)
}

#[test]
fn steady_state_downlink_path_makes_zero_allocations() {
    // --- 1. Packet construction, copy, and in-place rewrites ------------
    let (n, mut pkt) = allocs_during(|| data_packet(1, 1400));
    assert_eq!(n, 0, "PacketBuf::tcp must not allocate");

    let (n, copy) = allocs_during(|| pkt);
    assert_eq!(n, 0, "PacketBuf copy (the RLC clone) must not allocate");
    assert_eq!(copy, pkt);

    let (n, _) = allocs_during(|| {
        pkt.set_ecn(Ecn::Ce);
        pkt.ecn()
    });
    assert_eq!(n, 0, "ECN rewrite (L4Span marking) must not allocate");

    let (n, _) = allocs_during(|| {
        pkt.update_tcp(|h| h.flags.set(TcpFlags::ECE));
    });
    assert_eq!(n, 0, "in-flight TCP rewrite must not allocate");

    let (n, _) = allocs_during(|| (pkt.five_tuple(), pkt.identification(), pkt.is_tcp_ack()));
    assert_eq!(n, 0, "hot-path accessors must not allocate");

    // --- 2. RLC segmentation cycle (UM: no retransmission store) --------
    let mut rlc = RlcTx::new(RlcMode::Um, 4096, 8);
    let mut txed: Vec<TxRecord> = Vec::with_capacity(64);
    let mut segs: Vec<Segment> = Vec::with_capacity(64);
    // Warm-up: let the SDU VecDeque grow its ring to steady-state size.
    for sn in 0..256u64 {
        rlc.enqueue(sn, data_packet(sn as u16, 1400), Instant::ZERO);
    }
    txed.clear();
    segs.clear();
    rlc.pull_with(usize::MAX / 2, Instant::from_millis(1), &mut txed, |s| {
        segs.push(s)
    });
    segs.clear();
    txed.clear();
    // Steady state: enqueue → segment in two pulls → fully transmitted.
    let (n, _) = allocs_during(|| {
        for sn in 1000..1064u64 {
            rlc.enqueue(sn, data_packet(sn as u16, 1400), Instant::from_millis(2));
            rlc.pull_with(600, Instant::from_millis(3), &mut txed, |s| segs.push(s));
            rlc.pull_with(4096, Instant::from_millis(3), &mut txed, |s| segs.push(s));
            segs.clear();
            txed.clear();
        }
    });
    assert_eq!(
        n, 0,
        "UM enqueue/segment/pull cycle must not allocate once warm"
    );

    // --- 3. Event-queue schedule/pop with a warm heap -------------------
    let mut q: EventQueue<(u64, PacketBuf)> = EventQueue::with_capacity(1024);
    for i in 0..512 {
        q.schedule(Instant::from_millis(i), (i, data_packet(i as u16, 1400)));
    }
    while q.pop().is_some() {}
    let (n, _) = allocs_during(|| {
        for i in 0..512u64 {
            q.schedule(
                q.now() + Duration::from_millis(1 + i % 7),
                (i, data_packet(i as u16, 1400)),
            );
        }
        let mut sum = 0u64;
        while let Some((_, (i, p))) = q.pop() {
            sum += i + p.wire_len() as u64;
        }
        sum
    });
    assert_eq!(
        n, 0,
        "schedule/pop on a pre-sized event heap must not allocate"
    );
}

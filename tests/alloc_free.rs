//! Allocation-freedom proof for the steady-state downlink packet path.
//!
//! PR 2's claim is that a simulated packet, once the world is warm,
//! costs **zero heap allocations** end to end on the downlink data path:
//! construction (inline `[u8; 80]` header store), the L4Span ECN / TCP
//! rewrites (in-place), the RLC clone into segments (`PacketBuf: Copy`),
//! and the event-queue schedule/pop cycle (pooled boxes, pre-sized
//! heap). This test installs a counting global allocator and asserts
//! exactly that, operation by operation.
//!
//! Everything runs in ONE `#[test]` because the counter is process-wide:
//! parallel test threads would bleed counts into each other.

use l4span::net::{Ecn, PacketBuf, TcpFlags, TcpHeader};
use l4span::ran::config::RlcMode;
use l4span::ran::rlc::{RlcStatus, RlcTx, Segment, TxRecord};
use l4span::ran::{DrbId, UeId, UeStack};
use l4span::sim::{Duration, EventQueue, Instant, SimRng};
use l4span_alloctrack::CountingAlloc;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

/// Allocation requests made while running `f`.
fn allocs_during<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = ALLOC.count();
    let r = f();
    (ALLOC.count() - before, r)
}

fn data_packet(ident: u16, payload: usize) -> PacketBuf {
    let hdr = TcpHeader {
        src_port: 443,
        dst_port: 50_000,
        seq: 1000,
        ack: 7,
        flags: TcpFlags::new().with(TcpFlags::ACK),
        ..TcpHeader::default()
    };
    PacketBuf::tcp(0x0A00_0001, 0xC0A8_0001, Ecn::Ect1, ident, &hdr, payload)
}

#[test]
fn steady_state_downlink_path_makes_zero_allocations() {
    // --- 1. Packet construction, copy, and in-place rewrites ------------
    let (n, mut pkt) = allocs_during(|| data_packet(1, 1400));
    assert_eq!(n, 0, "PacketBuf::tcp must not allocate");

    let (n, copy) = allocs_during(|| pkt);
    assert_eq!(n, 0, "PacketBuf copy (the RLC clone) must not allocate");
    assert_eq!(copy, pkt);

    let (n, _) = allocs_during(|| {
        pkt.set_ecn(Ecn::Ce);
        pkt.ecn()
    });
    assert_eq!(n, 0, "ECN rewrite (L4Span marking) must not allocate");

    let (n, _) = allocs_during(|| {
        pkt.update_tcp(|h| h.flags.set(TcpFlags::ECE));
    });
    assert_eq!(n, 0, "in-flight TCP rewrite must not allocate");

    let (n, _) = allocs_during(|| (pkt.five_tuple(), pkt.identification(), pkt.is_tcp_ack()));
    assert_eq!(n, 0, "hot-path accessors must not allocate");

    // --- 2. RLC segmentation cycle (UM: no retransmission store) --------
    let mut rlc = RlcTx::new(RlcMode::Um, 4096, 8);
    let mut txed: Vec<TxRecord> = Vec::with_capacity(64);
    let mut segs: Vec<Segment> = Vec::with_capacity(64);
    // Warm-up: let the SDU VecDeque grow its ring to steady-state size.
    for sn in 0..256u64 {
        rlc.enqueue(sn, data_packet(sn as u16, 1400), Instant::ZERO);
    }
    txed.clear();
    segs.clear();
    rlc.pull_with(usize::MAX / 2, Instant::from_millis(1), &mut txed, |s| {
        segs.push(s)
    });
    segs.clear();
    txed.clear();
    // Steady state: enqueue → segment in two pulls → fully transmitted.
    let (n, _) = allocs_during(|| {
        for sn in 1000..1064u64 {
            rlc.enqueue(sn, data_packet(sn as u16, 1400), Instant::from_millis(2));
            rlc.pull_with(600, Instant::from_millis(3), &mut txed, |s| segs.push(s));
            rlc.pull_with(4096, Instant::from_millis(3), &mut txed, |s| segs.push(s));
            segs.clear();
            txed.clear();
        }
    });
    assert_eq!(
        n, 0,
        "UM enqueue/segment/pull cycle must not allocate once warm"
    );

    // --- 3. UE uplink path: enqueue → uplink slot into pooled buffers ---
    // PR 3 pools the `UlAtGnb` payload vectors exactly like the DL event
    // boxes; with the buffers at steady-state size, a full uplink cycle
    // (ACK enqueue with SR-delay draw, queue drain, AM status emission)
    // must not allocate.
    let mut ue = UeStack::new(
        UeId(0),
        &[(DrbId(0), RlcMode::Am)],
        Duration::from_millis(1),
        Duration::from_millis(2),
        Duration::from_millis(5),
        SimRng::new(7),
    );
    let mut ul_pkts: Vec<PacketBuf> = Vec::with_capacity(64);
    let mut ul_statuses: Vec<(DrbId, RlcStatus)> = Vec::with_capacity(8);
    // Warm-up: grow the UL queue ring and produce one status cycle.
    for i in 0..32u64 {
        ue.enqueue_uplink(data_packet(i as u16, 0), Instant::from_millis(i));
    }
    ue.on_uplink_slot_into(Instant::from_millis(100), &mut ul_pkts, &mut ul_statuses);
    ul_pkts.clear();
    ul_statuses.clear();
    // A delivered segment makes the AM receiver dirty, so the first
    // measured slot below also exercises the status-report emission path
    // (a gap-free status carries an empty NACK vec: no allocation).
    let seg = Segment {
        sn: 0,
        offset: 0,
        len: 1480,
        sdu_size: 1480,
        payload: Some(data_packet(0, 1400)),
        t_ingress: Instant::from_millis(100),
    };
    let deliveries = ue.on_transport_block(
        l4span::ran::mac::TransportBlock {
            ue: UeId(0),
            segments: vec![(DrbId(0), seg)],
            bytes: 1480,
            attempt: 1,
            cqi: 10,
            first_tx: Instant::from_millis(150),
        },
        Instant::from_millis(150),
    );
    assert_eq!(deliveries.len(), 1);
    let (n, _) = allocs_during(|| {
        let mut total = 0usize;
        for k in 0..64u64 {
            let t = Instant::from_millis(200 + 10 * k);
            ue.enqueue_uplink(data_packet(k as u16, 0), t);
            ue.on_uplink_slot_into(t + Duration::from_millis(6), &mut ul_pkts, &mut ul_statuses);
            total += ul_pkts.len() + ul_statuses.len();
            ul_pkts.clear();
            ul_statuses.clear();
        }
        total
    });
    assert_eq!(
        n, 0,
        "uplink enqueue/slot cycle into pooled buffers must not allocate"
    );

    // --- 3b. UE uplink DATA path: enqueue → BSR → grant-bounded pull ----
    // The bidirectional extension adds per-DRB uplink PDCP/RLC transmit
    // entities at the UE. Once their rings and the pooled BSR buffer are
    // warm, the steady-state cycle — PDCP SN assignment, RLC enqueue
    // (with the SR-arming RNG draw), buffer-status reporting into a
    // pooled buffer, and a grant-sized pull into reused scratch — must
    // not touch the allocator.
    let mut ue_ul = UeStack::new(
        UeId(1),
        &[(DrbId(0), RlcMode::Am)],
        Duration::from_millis(1),
        Duration::from_millis(2),
        Duration::from_millis(5),
        SimRng::new(9),
    );
    ue_ul.configure_ul_drb(DrbId(0), RlcMode::Am, 4096, 8);
    let mut bsr: Vec<(DrbId, usize)> = Vec::with_capacity(8);
    // Warm-up: grow the UL queue ring, emit a BSR, drain via a TB.
    for i in 0..64u64 {
        ue_ul.enqueue_uplink_data(DrbId(0), data_packet(i as u16, 1400), Instant::from_millis(i));
    }
    ue_ul.ul_bsr_into(Instant::from_millis(100), &mut bsr);
    bsr.clear();
    let _ = ue_ul.build_ul_tb(usize::MAX / 2, 10, Instant::from_millis(101));
    let (n, _) = allocs_during(|| {
        let mut total = 0usize;
        for k in 0..64u64 {
            let t = Instant::from_millis(200 + 10 * k);
            ue_ul.enqueue_uplink_data(DrbId(0), data_packet(k as u16, 1400), t);
            ue_ul.ul_bsr_into(t + Duration::from_millis(6), &mut bsr);
            total += bsr.len();
            bsr.clear();
        }
        total
    });
    assert_eq!(
        n, 0,
        "uplink data enqueue/BSR cycle into pooled buffers must not allocate"
    );

    // --- 4. Event-queue schedule/pop with a warm heap -------------------
    let mut q: EventQueue<(u64, PacketBuf)> = EventQueue::with_capacity(1024);
    for i in 0..512 {
        q.schedule(Instant::from_millis(i), (i, data_packet(i as u16, 1400)));
    }
    while q.pop().is_some() {}
    let (n, _) = allocs_during(|| {
        for i in 0..512u64 {
            q.schedule(
                q.now() + Duration::from_millis(1 + i % 7),
                (i, data_packet(i as u16, 1400)),
            );
        }
        let mut sum = 0u64;
        while let Some((_, (i, p))) = q.pop() {
            sum += i + p.wire_len() as u64;
        }
        sum
    });
    assert_eq!(
        n, 0,
        "schedule/pop on a pre-sized event heap must not allocate"
    );

    // --- 5. gNB slot tick into reused SlotOutput (PR 8 shard hot loop) --
    // Each shard's epoch is dominated by per-cell slot ticks. With the
    // gNB's internal scratch warm, the TB segment buffers recycled, and
    // the caller's `SlotOutput` reused, a full enqueue → slot → recycle
    // cycle must not touch the allocator.
    use l4span::ran::channel::ChannelProfile;
    use l4span::ran::config::{CellConfig, SchedulerKind};
    use l4span::ran::ids::Qfi;
    use l4span::ran::{FadingChannel, Gnb, SlotOutput};
    let cfg = CellConfig::default();
    let slot = cfg.slot_duration;
    let mut gnb = Gnb::new(cfg.clone(), SchedulerKind::RoundRobin, SimRng::new(1));
    let seeds = SimRng::new(99);
    for u in 0..4u16 {
        let ch = FadingChannel::new(
            ChannelProfile::Static,
            25.0,
            cfg.carrier_hz,
            &mut seeds.derive(u as u64),
        );
        gnb.add_ue(UeId(u), ch, &[(DrbId(0), RlcMode::Um)]);
    }
    let mut out = SlotOutput::default();
    // Warm-up: grow RLC rings to their cap (the offered load exceeds
    // the cell rate, so steady state is a full queue), plus scheduler
    // scratch and the TB segment pool (buffers only enter the pool via
    // recycle).
    for i in 0..2048u64 {
        for u in 0..4u16 {
            for _ in 0..2 {
                gnb.enqueue_downlink(UeId(u), Qfi(1), data_packet(i as u16, 1400), Instant::ZERO + slot * i);
            }
        }
        gnb.on_slot_into(Instant::ZERO + slot * i, &mut out);
        for d in out.deliveries.drain(..) {
            gnb.recycle_segments(d.tb.segments);
        }
    }
    let (n, _) = allocs_during(|| {
        let mut served = 0usize;
        for i in 2048..2304u64 {
            let t = Instant::ZERO + slot * i;
            for u in 0..4u16 {
                gnb.enqueue_downlink(UeId(u), Qfi(1), data_packet(i as u16, 1400), t);
            }
            gnb.on_slot_into(t, &mut out);
            for d in out.deliveries.drain(..) {
                served += 1;
                gnb.recycle_segments(d.tb.segments);
            }
        }
        served
    });
    assert_eq!(
        n, 0,
        "warm gNB slot tick into a reused SlotOutput must not allocate"
    );

    // --- 6. Cross-shard mailbox cycle (PR 8) ----------------------------
    // The coordinator's steady-state envelope cycle: a source shard
    // pushes pooled boxes into its outbox, the coordinator appends them
    // into a reused buffer, wraps them as `(at, src, k)` envelopes,
    // sorts (unstable — the key is strictly total, and unlike the
    // stable sort it never allocates), and injects into a warm
    // destination heap that recycles the boxes back to the pool.
    let mut pool: Vec<Box<u64>> = (0..64).map(Box::new).collect();
    let mut outbox: Vec<(Instant, Box<u64>)> = Vec::with_capacity(64);
    let mut buf: Vec<(Instant, Box<u64>)> = Vec::with_capacity(64);
    let mut envelopes: Vec<(Instant, usize, usize, Box<u64>)> = Vec::with_capacity(64);
    let mut dst: EventQueue<Box<u64>> = EventQueue::with_capacity(128);
    // Warm the destination heap.
    for i in 0..64u64 {
        dst.schedule(Instant::from_millis(i), pool.pop().expect("pooled"));
    }
    while let Some((_, bx)) = dst.pop() {
        pool.push(bx);
    }
    let (n, _) = allocs_during(|| {
        let mut sum = 0u64;
        for round in 0..64u64 {
            let barrier = dst.now() + Duration::from_millis(1);
            // Source epoch: mail produced with pooled boxes.
            for k in 0..32u64 {
                let mut bx = pool.pop().expect("pooled");
                *bx = round * 100 + k;
                outbox.push((barrier + Duration::from_micros(k % 7), bx));
            }
            // Coordinator: take, wrap, sort, inject.
            buf.append(&mut outbox);
            for (k, (at, bx)) in buf.drain(..).enumerate() {
                envelopes.push((at, 0, k, bx));
            }
            envelopes.sort_unstable_by_key(|&(at, s, k, _)| (at, s, k));
            for (at, _, _, bx) in envelopes.drain(..) {
                dst.schedule(at, bx);
            }
            // Destination epoch: drain, recycle the boxes.
            while let Some((_, bx)) = dst.pop() {
                sum += *bx;
                pool.push(bx);
            }
        }
        sum
    });
    assert_eq!(
        n, 0,
        "steady-state cross-shard mailbox cycle must not allocate"
    );
}
